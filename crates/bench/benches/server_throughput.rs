//! Experiment X6 — service throughput: requests/second through the
//! `ezrt serve` HTTP front end over loopback, cached hits versus
//! uncached misses on the paper's mine-pump specification, plus the
//! artifact tiers: memory hit vs disk-tier hit vs full-synthesis miss
//! for `POST /v1/table`.
//!
//! The uncached arms post a fresh spec per request (the name is part of
//! the canonical digest, so renaming forces a miss and a full
//! synthesis); the cached arms re-post one resident spec. The client
//! keeps its connection alive (`Content-Length`-delimited reads,
//! transparent reconnect when the server recycles a connection at its
//! per-connection request cap), so the measured gap is lookup cost, not
//! connection setup.
//!
//! The X6c wire-speed arms use the `BufferedClient` (chunked reads,
//! pipelined batches, bytes-on-wire accounting) so the client's own
//! syscalls don't cap the measurement: full-body rendered-tier hits,
//! conditional GETs answered with a header-only `304`, and pipelined
//! conditional bursts (50 requests per TCP segment).
//!
//! Trajectory (one dev machine, loopback): before the rendered-byte
//! tier the full-body `table` memory hit re-rendered per request at
//! ~3,500 req/s; with it the same POST arm reaches ~8,100 req/s and the
//! buffered-client GET arm ~75,000 req/s — within 2x of `report-json`
//! (~144,000 req/s) despite a 47x larger body (40.9 KB vs 0.9 KB).
//! Conditional GET serves ~141,000 req/s at 479 B/req (~40x the old
//! full-body hit, ~1% of its bytes), and pipelining 50 conditionals per
//! segment reaches ~414,000 req/s.

use criterion::{criterion_group, criterion_main, Criterion};
use ezrt_server::{Server, ServerConfig};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// A keep-alive HTTP client: one persistent connection, responses read
/// exactly by `Content-Length`, reconnecting when the server announces
/// `Connection: close` (its per-connection request cap).
struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl Client {
    fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None }
    }

    fn connect(addr: SocketAddr) -> TcpStream {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        // Without TCP_NODELAY, Nagle + delayed ACK stall each
        // request/response round-trip by tens of milliseconds.
        stream.set_nodelay(true).expect("nodelay");
        stream
    }

    fn request(&mut self, method: &str, target: &str, body: &str) -> String {
        // A held connection may have been idle-closed by the server
        // (KEEP_ALIVE_IDLE) between bench phases — retry once on a
        // fresh connection instead of panicking on the stale one.
        if let Some(mut stream) = self.stream.take() {
            if let Some((body, close)) = Self::try_request(&mut stream, method, target, body) {
                if !close {
                    self.stream = Some(stream);
                }
                return body;
            }
        }
        let mut stream = Self::connect(self.addr);
        let (body, close) =
            Self::try_request(&mut stream, method, target, body).expect("fresh-connection request");
        if !close {
            self.stream = Some(stream);
        }
        body
    }

    /// One request/response exchange; `None` on any transport failure
    /// (so the caller can reconnect), a panic on a non-200 status (a
    /// real server-side problem the bench must not paper over).
    fn try_request(
        stream: &mut TcpStream,
        method: &str,
        target: &str,
        body: &str,
    ) -> Option<(String, bool)> {
        let mut message = format!(
            "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        message.extend_from_slice(body.as_bytes());
        stream.write_all(&message).ok()?;

        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            match stream.read(&mut byte) {
                Ok(0) | Err(_) => return None,
                Ok(_) => raw.push(byte[0]),
            }
        }
        let head = String::from_utf8(raw).expect("UTF-8 headers");
        assert!(
            head.starts_with("HTTP/1.1 200"),
            "unexpected response: {}",
            head.lines().next().unwrap_or_default()
        );
        let content_length: usize = head
            .lines()
            .find_map(|line| line.strip_prefix("Content-Length: "))
            .and_then(|value| value.trim().parse().ok())
            .expect("Content-Length header");
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body).ok()?;
        Some((
            String::from_utf8(body).expect("UTF-8 body"),
            head.contains("Connection: close"),
        ))
    }
}

/// A buffered keep-alive client for the wire-speed arms: requests go
/// out in (optionally pipelined) batches, responses are parsed out of a
/// growing read buffer, and every byte in both directions is counted —
/// the byte-at-a-time `Client` above would bottleneck these arms on its
/// own syscalls, not on the server.
struct BufferedClient {
    addr: SocketAddr,
    stream: TcpStream,
    buffer: Vec<u8>,
    on_connection: usize,
    bytes_on_wire: u64,
}

impl BufferedClient {
    fn new(addr: SocketAddr) -> BufferedClient {
        BufferedClient {
            addr,
            stream: Client::connect(addr),
            buffer: Vec::new(),
            on_connection: 0,
            bytes_on_wire: 0,
        }
    }

    /// Reconnects when `upcoming` more requests would cross the
    /// server's per-connection request cap (it would otherwise close
    /// the connection mid-batch).
    fn reserve(&mut self, upcoming: usize) {
        if self.on_connection + upcoming > 100 {
            self.stream = Client::connect(self.addr);
            self.buffer.clear();
            self.on_connection = 0;
        }
    }

    /// Writes `count` copies of `request` in ONE segment and reads the
    /// `count` in-order responses, returning the last `(head, body)`.
    fn burst(&mut self, request: &[u8], count: usize) -> (String, String) {
        self.reserve(count);
        let mut segment = Vec::with_capacity(request.len() * count);
        for _ in 0..count {
            segment.extend_from_slice(request);
        }
        self.stream.write_all(&segment).expect("write burst");
        self.bytes_on_wire += segment.len() as u64;
        self.on_connection += count;
        let mut last = (String::new(), String::new());
        for _ in 0..count {
            last = self.read_response();
        }
        last
    }

    fn read_response(&mut self) -> (String, String) {
        let head_end = loop {
            match self.buffer.windows(4).position(|w| w == b"\r\n\r\n") {
                Some(at) => break at,
                None => self.fill(),
            }
        };
        let head = String::from_utf8(self.buffer[..head_end].to_vec()).expect("UTF-8 head");
        let content_length: usize = head
            .lines()
            .find_map(|line| line.strip_prefix("Content-Length: "))
            .and_then(|value| value.trim().parse().ok())
            .expect("Content-Length header");
        let total = head_end + 4 + content_length;
        while self.buffer.len() < total {
            self.fill();
        }
        let body =
            String::from_utf8(self.buffer[head_end + 4..total].to_vec()).expect("UTF-8 body");
        self.buffer.drain(..total);
        (head, body)
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let count = self.stream.read(&mut chunk).expect("read");
        assert!(count > 0, "server closed mid-response");
        self.buffer.extend_from_slice(&chunk[..count]);
        self.bytes_on_wire += count as u64;
    }
}

/// Encodes one HTTP/1.1 keep-alive request.
fn encode_request(method: &str, target: &str, extra: &[(&str, &str)], body: &str) -> Vec<u8> {
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut message = head.into_bytes();
    message.extend_from_slice(body.as_bytes());
    message
}

/// Pulls the `spec_digest` field out of a schedule report body.
fn spec_digest(body: &str) -> String {
    let marker = "\"spec_digest\": \"";
    let start = body.find(marker).expect("spec_digest field") + marker.len();
    let rest = &body[start..];
    rest[..rest.find('"').expect("closing quote")].to_owned()
}

/// A mine-pump document whose digest is unique per `index` (the spec
/// name participates in the canonical serialization).
fn mine_pump_variant(index: usize) -> String {
    let document = ezrt_dsl::to_xml(&ezrt_spec::corpus::mine_pump());
    document.replacen(
        "name=\"mine-pump\"",
        &format!("name=\"mine-pump-{index}\""),
        1,
    )
}

fn rps(requests: usize, wall: Duration) -> f64 {
    requests as f64 / wall.as_secs_f64()
}

fn report_cached_vs_uncached(addr: SocketAddr) {
    let mut client = Client::new(addr);
    let base = mine_pump_variant(usize::MAX);

    // Prime the cached arm (and warm the connection path).
    let primed = client.request("POST", "/v1/schedule", &base);
    assert!(primed.contains("\"cache\": \"miss\""), "{primed}");

    const UNCACHED_REQUESTS: usize = 20;
    let started = Instant::now();
    for index in 0..UNCACHED_REQUESTS {
        let response = client.request("POST", "/v1/schedule", &mine_pump_variant(index));
        debug_assert!(response.contains("\"cache\": \"miss\""));
    }
    let uncached_rps = rps(UNCACHED_REQUESTS, started.elapsed());

    const CACHED_REQUESTS: usize = 400;
    let started = Instant::now();
    for _ in 0..CACHED_REQUESTS {
        black_box(client.request("POST", "/v1/schedule", &base));
    }
    let cached_wall = started.elapsed();
    let cached_rps = rps(CACHED_REQUESTS, cached_wall);

    let speedup = cached_rps / uncached_rps.max(1e-9);
    eprintln!(
        "[X6] server throughput (mine pump, loopback, keep-alive): \
         uncached {uncached_rps:.0} req/s vs cached {cached_rps:.0} req/s \
         ({:.3} ms/hit) — {speedup:.1}x{}",
        cached_wall.as_secs_f64() * 1e3 / CACHED_REQUESTS as f64,
        if speedup >= 10.0 {
            ""
        } else {
            "  (below the 10x cache target!)"
        },
    );
}

/// The artifact tiers on `POST /v1/table`: a full-synthesis miss, a
/// memory hit, and a disk-tier hit (a server with zero memory capacity
/// over a warm `--cache-dir`, so every request decodes the persisted
/// outcome and re-renders — the restarted-server steady state).
fn report_artifact_tiers(cache_dir: &Path) {
    let base = mine_pump_variant(usize::MAX);

    let memory_server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            cache_capacity: 4096,
            cache_dir: Some(cache_dir.to_path_buf()),
            ..ServerConfig::default()
        },
    )
    .expect("memory-tier server starts");
    let mut client = Client::new(memory_server.addr());

    const MISS_REQUESTS: usize = 10;
    let started = Instant::now();
    for index in 0..MISS_REQUESTS {
        black_box(client.request("POST", "/v1/table", &mine_pump_variant(1_000 + index)));
    }
    let miss_rps = rps(MISS_REQUESTS, started.elapsed());

    // Prime, then measure pure memory hits.
    client.request("POST", "/v1/table", &base);
    const HIT_REQUESTS: usize = 300;
    let started = Instant::now();
    for _ in 0..HIT_REQUESTS {
        black_box(client.request("POST", "/v1/table", &base));
    }
    let memory_rps = rps(HIT_REQUESTS, started.elapsed());
    drop(client);
    memory_server.stop();

    // Zero memory capacity over the same (now warm) directory: every
    // request is a disk revival, never a synthesis.
    let disk_server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            cache_capacity: 0,
            cache_dir: Some(cache_dir.to_path_buf()),
            ..ServerConfig::default()
        },
    )
    .expect("disk-tier server starts");
    let mut client = Client::new(disk_server.addr());
    const DISK_REQUESTS: usize = 100;
    let started = Instant::now();
    for _ in 0..DISK_REQUESTS {
        black_box(client.request("POST", "/v1/table", &base));
    }
    let disk_rps = rps(DISK_REQUESTS, started.elapsed());
    let stats = client.request("GET", "/v1/stats", "");
    assert!(
        stats.contains("\"cache_misses\": 0"),
        "disk-tier arm must never synthesize: {stats}"
    );
    drop(client);
    disk_server.stop();

    eprintln!(
        "[X6b] artifact tiers (POST /v1/table, mine pump): \
         miss {miss_rps:.0} req/s vs disk hit {disk_rps:.0} req/s vs \
         memory hit {memory_rps:.0} req/s — disk {:.0}x over miss, memory {:.1}x over disk",
        disk_rps / miss_rps.max(1e-9),
        memory_rps / disk_rps.max(1e-9),
    );
}

/// X6c — wire speed on a warm server: full-body rendered-tier hits,
/// conditional GETs answered 304, and pipelined conditional bursts,
/// with bytes on the wire (both directions) per request for each arm.
fn report_wire_speed(addr: SocketAddr) {
    let base = mine_pump_variant(usize::MAX);
    let mut client = BufferedClient::new(addr);

    let schedule = encode_request("POST", "/v1/schedule", &[], &base);
    let (_, body) = client.burst(&schedule, 1);
    let digest = spec_digest(&body);
    let table_target = format!("/v1/artifact/{digest}/table");
    let report_target = format!("/v1/artifact/{digest}/report-json");
    let table_get = encode_request("GET", &table_target, &[], "");
    let report_get = encode_request("GET", &report_target, &[], "");
    let etag = format!("\"{digest}:table\"");
    let conditional = encode_request("GET", &table_target, &[("If-None-Match", &etag)], "");

    // One arm: `total` requests in batches of `batch` per segment,
    // returning (req/s, average bytes on the wire per request).
    let mut arm = |request: &[u8], total: usize, batch: usize, expect: &str| {
        client.burst(request, 1); // warm the path outside the clock
        let before = client.bytes_on_wire;
        let started = Instant::now();
        let mut sent = 0;
        while sent < total {
            let count = batch.min(total - sent);
            let (head, _) = client.burst(request, count);
            assert!(head.starts_with(expect), "{head}");
            sent += count;
        }
        let wall = started.elapsed();
        (
            rps(total, wall),
            (client.bytes_on_wire - before) as f64 / total as f64,
        )
    };

    let (table_rps, table_bytes) = arm(&table_get, 1_000, 1, "HTTP/1.1 200");
    let (report_rps, report_bytes) = arm(&report_get, 1_000, 1, "HTTP/1.1 200");
    let (cond_rps, cond_bytes) = arm(&conditional, 2_000, 1, "HTTP/1.1 304");
    let (piped_rps, piped_bytes) = arm(&conditional, 10_000, 50, "HTTP/1.1 304");

    eprintln!(
        "[X6c] wire speed (GET /v1/artifact, mine pump, buffered client): \
         table full-body {table_rps:.0} req/s ({table_bytes:.0} B/req) vs \
         report-json full-body {report_rps:.0} req/s ({report_bytes:.0} B/req) — \
         table/report ratio {:.2}{}",
        report_rps / table_rps.max(1e-9),
        if report_rps / table_rps.max(1e-9) <= 2.0 {
            ""
        } else {
            "  (rendered tier should hold this within 2x!)"
        },
    );
    eprintln!(
        "[X6c] conditional GET 304: {cond_rps:.0} req/s ({cond_bytes:.0} B/req) — \
         {:.1}x over full-body; pipelined x50: {piped_rps:.0} req/s \
         ({piped_bytes:.0} B/req) — {:.1}x over full-body, \
         {:.2}x the bytes",
        cond_rps / table_rps.max(1e-9),
        piped_rps / table_rps.max(1e-9),
        piped_bytes / table_bytes.max(1e-9),
    );
}

fn bench_server_throughput(c: &mut Criterion) {
    let cache_dir = std::env::temp_dir().join(format!("ezrt_bench_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            cache_capacity: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    report_cached_vs_uncached(addr);
    report_artifact_tiers(&cache_dir);
    report_wire_speed(addr);

    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(20);
    let base = mine_pump_variant(usize::MAX); // resident since the report
    let client = std::cell::RefCell::new(Client::new(addr));
    let digest = spec_digest(&client.borrow_mut().request("POST", "/v1/schedule", &base));
    let conditional = encode_request(
        "GET",
        &format!("/v1/artifact/{digest}/table"),
        &[("If-None-Match", &format!("\"{digest}:table\""))],
        "",
    );
    let wire = std::cell::RefCell::new(BufferedClient::new(addr));
    group.bench_function("artifact_conditional_304", |b| {
        b.iter(|| black_box(wire.borrow_mut().burst(&conditional, 1)))
    });
    group.bench_function("artifact_conditional_304_pipelined_x50", |b| {
        b.iter(|| black_box(wire.borrow_mut().burst(&conditional, 50)))
    });
    group.bench_function("schedule_cached_hit", |b| {
        b.iter(|| black_box(client.borrow_mut().request("POST", "/v1/schedule", &base)))
    });
    group.bench_function("table_cached_hit", |b| {
        b.iter(|| black_box(client.borrow_mut().request("POST", "/v1/table", &base)))
    });
    let fresh_index = std::sync::atomic::AtomicUsize::new(1_000_000);
    group.bench_function("schedule_uncached_miss", |b| {
        b.iter(|| {
            let index = fresh_index.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            black_box(client.borrow_mut().request(
                "POST",
                "/v1/schedule",
                &mine_pump_variant(index),
            ))
        })
    });
    group.finish();
    drop(client);
    drop(wire);

    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
