//! Inter-task relation models (paper §3.3.2) and message pipelines.
//!
//! Relations are implemented as *stages*: extra `[0,0]` transitions
//! inserted between a task's release (`t_r`) and grant (`t_g`)
//! transitions. [`translate`](crate::translate) chains a task's stages in
//! a canonical order — precedences, then message receives, then exclusion
//! locks (sorted by partner) — and wires `t_r → stage₁ → … → p_wg`.

use crate::blocks::{Assembly, TaskBlocks};
use crate::priority::Priority;
use crate::roles::TransitionRole;
use ezrt_spec::{Message, MessageId};
use ezrt_tpn::{PlaceId, TimeInterval, TransitionId};

/// One relation stage: a transition waiting in `entry` for its extra
/// pre-condition (a precedence token, an exclusion lock, a delivered
/// message). The stage's output arc is wired by the chain assembler.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    /// The place the previous element of the chain feeds.
    pub entry: PlaceId,
    /// The stage transition (interval `[0,0]`, priority `STAGE`).
    pub transition: TransitionId,
}

/// Adds the precedence model of Fig. 3 for `from PRECEDES to`:
///
/// * `from`'s finish transition additionally produces into a buffer place
///   `p_prec`;
/// * `to` gets a stage consuming one `p_prec` token, so instance `k` of
///   `to` can only pass once instance `k` of `from` has finished.
pub fn add_precedence(asm: &mut Assembly, from: &TaskBlocks, to: &TaskBlocks) -> (PlaceId, Stage) {
    let fi = from.task.index();
    let ti = to.task.index();
    let buffer = asm.builder.place(format!("pprec_{fi}_{ti}"));
    asm.builder
        .arc_transition_to_place(from.t_finish, buffer, 1);

    let entry = asm.builder.place(format!("pwp_{ti}_{fi}"));
    let transition = asm.transition(
        format!("tprec_{fi}_{ti}"),
        TimeInterval::immediate(),
        Priority::STAGE,
        TransitionRole::PrecedenceGrant {
            from: from.task,
            to: to.task,
        },
    );
    asm.builder.arc_place_to_transition(entry, transition, 1);
    asm.builder.arc_place_to_transition(buffer, transition, 1);
    (buffer, Stage { entry, transition })
}

/// Adds the exclusion model of Fig. 4 for `a EXCLUDES b` (symmetric):
///
/// * a shared lock place with a single token;
/// * one acquire stage per task (`t_excl`), holding the lock from before
///   the first processor grant until the instance's finish — so, per the
///   paper, neither task can *start* while the other is executing, even
///   across preemptions;
/// * both finish transitions return the lock.
///
/// Returns the lock place and the two stages `(stage_a, stage_b)`.
pub fn add_exclusion(
    asm: &mut Assembly,
    a: &TaskBlocks,
    b: &TaskBlocks,
) -> (PlaceId, Stage, Stage) {
    let ai = a.task.index();
    let bi = b.task.index();
    let lock = asm.builder.place_with_tokens(format!("pexcl_{ai}_{bi}"), 1);

    let mut acquire = |blocks: &TaskBlocks, partner: &TaskBlocks| -> Stage {
        let i = blocks.task.index();
        let j = partner.task.index();
        let entry = asm.builder.place(format!("pwe_{i}_{j}"));
        let transition = asm.transition(
            format!("texcl_{i}_{j}"),
            TimeInterval::immediate(),
            Priority::STAGE,
            TransitionRole::ExclusionAcquire {
                task: blocks.task,
                partner: partner.task,
            },
        );
        asm.builder.arc_place_to_transition(entry, transition, 1);
        asm.builder.arc_place_to_transition(lock, transition, 1);
        asm.builder
            .arc_transition_to_place(blocks.t_finish, lock, 1);
        Stage { entry, transition }
    };

    let stage_a = acquire(a, b);
    let stage_b = acquire(b, a);
    (lock, stage_a, stage_b)
}

/// Adds a message pipeline for `message` (metamodel `MessageC`):
///
/// * the sender's finish transition produces one message token;
/// * `t_mg [g, g]` (bus grant) takes the shared `bus` resource after the
///   worst-case arbitration delay;
/// * `t_mt [ct, ct]` (bus transfer) returns the bus and delivers the
///   message;
/// * the receiver gets a stage consuming the delivered token.
///
/// With `g = ct = 0` on a mono-processor this degenerates to a precedence
/// relation, which is the paper's "inter-task communication" in step iii
/// of its model-generation recipe.
pub fn add_message(
    asm: &mut Assembly,
    id: MessageId,
    message: &Message,
    sender: &TaskBlocks,
    receiver: &TaskBlocks,
    bus: PlaceId,
) -> Stage {
    let mi = id.index();
    let name = message.name();

    let outbox = asm.builder.place(format!("pmsg{mi}_{name}"));
    asm.builder
        .arc_transition_to_place(sender.t_finish, outbox, 1);

    let transferring = asm.builder.place(format!("ptx{mi}_{name}"));
    let t_grant = asm.transition(
        format!("tmg{mi}_{name}"),
        TimeInterval::exact(message.grant_bus()),
        Priority::DECISION,
        TransitionRole::BusGrant(id),
    );
    asm.builder.arc_place_to_transition(outbox, t_grant, 1);
    asm.builder.arc_place_to_transition(bus, t_grant, 1);
    asm.builder
        .arc_transition_to_place(t_grant, transferring, 1);

    let delivered = asm.builder.place(format!("pmd{mi}_{name}"));
    let t_transfer = asm.transition(
        format!("tmt{mi}_{name}"),
        TimeInterval::exact(message.communication()),
        Priority::DECISION,
        TransitionRole::BusTransfer(id),
    );
    asm.builder
        .arc_place_to_transition(transferring, t_transfer, 1);
    asm.builder.arc_transition_to_place(t_transfer, bus, 1);
    asm.builder
        .arc_transition_to_place(t_transfer, delivered, 1);

    let entry = asm
        .builder
        .place(format!("pwm_{}_{mi}", receiver.task.index()));
    let transition = asm.transition(
        format!("tmr{mi}_{name}"),
        TimeInterval::immediate(),
        Priority::STAGE,
        TransitionRole::MessageReceive {
            message: id,
            to: receiver.task,
        },
    );
    asm.builder.arc_place_to_transition(entry, transition, 1);
    asm.builder
        .arc_place_to_transition(delivered, transition, 1);
    Stage { entry, transition }
}

/// Wires a task's release transition through its relation stages into the
/// wait-grant place: `t_r → stage₁.entry`, `stageₖ → stageₖ₊₁.entry`,
/// `stage_last → p_wg` (or `t_r → p_wg` when there are no stages).
pub fn wire_release_chain(asm: &mut Assembly, blocks: &TaskBlocks, stages: &[Stage]) {
    match stages.split_first() {
        None => {
            asm.builder
                .arc_transition_to_place(blocks.t_release, blocks.wait_grant, 1);
        }
        Some((first, rest)) => {
            asm.builder
                .arc_transition_to_place(blocks.t_release, first.entry, 1);
            let mut previous = first;
            for stage in rest {
                asm.builder
                    .arc_transition_to_place(previous.transition, stage.entry, 1);
                previous = stage;
            }
            asm.builder
                .arc_transition_to_place(previous.transition, blocks.wait_grant, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{add_fork, add_join, add_processor, add_task_blocks};
    use ezrt_spec::{SpecBuilder, TaskId};

    fn two_task_assembly(
        preemptive: bool,
    ) -> (Assembly, TaskBlocks, TaskBlocks, ezrt_spec::EzSpec) {
        let spec = SpecBuilder::new("pair")
            .task("A", move |t| {
                let t = t.computation(2).deadline(10).period(20);
                if preemptive {
                    t.preemptive()
                } else {
                    t
                }
            })
            .task("B", move |t| {
                let t = t.computation(3).deadline(20).period(20);
                if preemptive {
                    t.preemptive()
                } else {
                    t
                }
            })
            .build()
            .unwrap();
        let mut asm = Assembly::new("relations-test");
        let cpu = add_processor(&mut asm, "cpu0");
        let a = add_task_blocks(
            &mut asm,
            TaskId::from_index(0),
            spec.task_by_name("A").unwrap(),
            1,
            cpu,
        );
        let b = add_task_blocks(
            &mut asm,
            TaskId::from_index(1),
            spec.task_by_name("B").unwrap(),
            1,
            cpu,
        );
        (asm, a, b, spec)
    }

    fn close(mut asm: Assembly, a: &TaskBlocks, b: &TaskBlocks) -> ezrt_tpn::TimePetriNet {
        add_fork(&mut asm, &[a.start, b.start]);
        add_join(&mut asm, &[(a.finished, 1), (b.finished, 1)]);
        asm.builder.build().unwrap()
    }

    /// Drive a net with the first-fireable policy until quiescent,
    /// recording (name, absolute time).
    fn run(net: &ezrt_tpn::TimePetriNet) -> Vec<(String, u64)> {
        let mut state = net.initial_state();
        let mut clock = 0;
        let mut log = Vec::new();
        for _ in 0..200 {
            let fireable = net.fireable(&state);
            let Some(&t) = fireable.first() else { break };
            let (dlb, _) = net.firing_domain(&state, t).unwrap();
            let (next, firing) = net.fire(&state, t, dlb).unwrap();
            clock += firing.delay();
            log.push((net.transition(t).name().to_owned(), clock));
            state = next;
        }
        log
    }

    #[test]
    fn precedence_orders_finish_before_successor_grant() {
        let (mut asm, a, b, _spec) = two_task_assembly(false);
        let (_, stage_b) = add_precedence(&mut asm, &a, &b);
        wire_release_chain(&mut asm, &a, &[]);
        wire_release_chain(&mut asm, &b, &[stage_b]);
        let net = close(asm, &a, &b);
        let log = run(&net);
        let pos = |name: &str| log.iter().position(|(n, _)| n == name).unwrap();
        assert!(
            pos("tf0_A") < pos("tg1_B"),
            "B may only be granted after A finished: {log:?}"
        );
        assert!(log.iter().any(|(n, _)| n == "tend"), "net completes");
    }

    #[test]
    fn precedence_stage_structure_matches_figure_3() {
        let (mut asm, a, b, _spec) = two_task_assembly(false);
        let (buffer, stage_b) = add_precedence(&mut asm, &a, &b);
        wire_release_chain(&mut asm, &a, &[]);
        wire_release_chain(&mut asm, &b, &[stage_b]);
        let net = close(asm, &a, &b);
        // The stage transition is immediate and consumes entry + buffer.
        let t = net.transition(stage_b.transition);
        assert!(t.interval().is_immediate());
        let pre: Vec<PlaceId> = net
            .pre_set(stage_b.transition)
            .iter()
            .map(|&(p, _)| p)
            .collect();
        assert!(pre.contains(&stage_b.entry));
        assert!(pre.contains(&buffer));
        // A's finish feeds the buffer.
        assert!(net.post_set(a.t_finish).iter().any(|&(p, _)| p == buffer));
    }

    #[test]
    fn exclusion_serializes_preemptive_tasks() {
        let (mut asm, a, b, _spec) = two_task_assembly(true);
        let (lock, stage_a, stage_b) = add_exclusion(&mut asm, &a, &b);
        wire_release_chain(&mut asm, &a, &[stage_a]);
        wire_release_chain(&mut asm, &b, &[stage_b]);
        let net = close(asm, &a, &b);
        assert_eq!(net.place(lock).initial_tokens(), 1);

        let log = run(&net);
        // Whoever acquires first must finish before the other's first
        // grant — execution windows may not interleave.
        let first_grant_a = log.iter().position(|(n, _)| n == "tg0_A");
        let first_grant_b = log.iter().position(|(n, _)| n == "tg1_B");
        let finish_a = log.iter().position(|(n, _)| n == "tf0_A");
        let finish_b = log.iter().position(|(n, _)| n == "tf1_B");
        let (ga, gb, fa, fb) = (
            first_grant_a.unwrap(),
            first_grant_b.unwrap(),
            finish_a.unwrap(),
            finish_b.unwrap(),
        );
        if ga < gb {
            assert!(fa < gb, "A finished before B started: {log:?}");
        } else {
            assert!(fb < ga, "B finished before A started: {log:?}");
        }
        assert!(log.iter().any(|(n, _)| n == "tend"));
    }

    #[test]
    fn exclusion_lock_is_returned_at_finish() {
        let (mut asm, a, b, _spec) = two_task_assembly(false);
        let (lock, stage_a, stage_b) = add_exclusion(&mut asm, &a, &b);
        wire_release_chain(&mut asm, &a, &[stage_a]);
        wire_release_chain(&mut asm, &b, &[stage_b]);
        let net = close(asm, &a, &b);
        assert!(net.post_set(a.t_finish).iter().any(|&(p, _)| p == lock));
        assert!(net.post_set(b.t_finish).iter().any(|&(p, _)| p == lock));
        // Both acquire transitions consume the same lock.
        assert!(net
            .pre_set(stage_a.transition)
            .iter()
            .any(|&(p, _)| p == lock));
        assert!(net
            .pre_set(stage_b.transition)
            .iter()
            .any(|&(p, _)| p == lock));
    }

    #[test]
    fn message_pipeline_delivers_through_the_bus() {
        let spec = SpecBuilder::new("msg")
            .task("TX", |t| t.computation(2).deadline(10).period(20))
            .task("RX", |t| t.computation(1).deadline(20).period(20))
            .message("frame", "TX", "RX", "can0", 1, 2)
            .build()
            .unwrap();
        let mut asm = Assembly::new("message-test");
        let cpu = add_processor(&mut asm, "cpu0");
        let tx = add_task_blocks(
            &mut asm,
            TaskId::from_index(0),
            spec.task_by_name("TX").unwrap(),
            1,
            cpu,
        );
        let rx = add_task_blocks(
            &mut asm,
            TaskId::from_index(1),
            spec.task_by_name("RX").unwrap(),
            1,
            cpu,
        );
        let bus = asm.builder.place_with_tokens("pbus_can0", 1);
        let (mid, message) = spec.messages().next().unwrap();
        let stage = add_message(&mut asm, mid, message, &tx, &rx, bus);
        wire_release_chain(&mut asm, &tx, &[]);
        wire_release_chain(&mut asm, &rx, &[stage]);
        let net = close(asm, &tx, &rx);

        let log = run(&net);
        let time_of = |name: &str| log.iter().find(|(n, _)| n == name).map(|&(_, t)| t);
        // TX computes during [0, 2); grant after 1 more unit; transfer 2.
        assert_eq!(time_of("tf0_TX"), Some(2));
        assert_eq!(time_of("tmg0_frame"), Some(3));
        assert_eq!(time_of("tmt0_frame"), Some(5));
        // RX may only be granted after delivery.
        let grant_rx = time_of("tg1_RX").expect("RX runs");
        assert!(grant_rx >= 5, "RX granted at {grant_rx}, before delivery");
        assert!(log.iter().any(|(n, _)| n == "tend"));
    }

    #[test]
    fn wire_release_chain_handles_multiple_stages_in_order() {
        let (mut asm, a, b, _spec) = two_task_assembly(false);
        let (_, prec_stage) = add_precedence(&mut asm, &a, &b);
        let (_, excl_a, excl_b) = add_exclusion(&mut asm, &a, &b);
        wire_release_chain(&mut asm, &a, &[excl_a]);
        wire_release_chain(&mut asm, &b, &[prec_stage, excl_b]);
        let net = close(asm, &a, &b);
        // B's release feeds the precedence entry, whose transition feeds
        // the exclusion entry, whose transition feeds wait-grant.
        assert!(net
            .post_set(b.t_release)
            .iter()
            .any(|&(p, _)| p == prec_stage.entry));
        assert!(net
            .post_set(prec_stage.transition)
            .iter()
            .any(|&(p, _)| p == excl_b.entry));
        assert!(net
            .post_set(excl_b.transition)
            .iter()
            .any(|&(p, _)| p == b.wait_grant));
        // The run still completes despite the double gating.
        let log = run(&net);
        assert!(log.iter().any(|(n, _)| n == "tend"), "{log:?}");
    }
}
