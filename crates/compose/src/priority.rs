//! The priority scheme `π : T → ℕ` assigned by the translation.
//!
//! Priorities resolve same-instant conflicts deterministically (smaller
//! value = higher priority, per the paper's `FT(s)` definition). The
//! ordering encodes three rules worked out in DESIGN.md:
//!
//! 1. *bookkeeping before decisions* — finish/disarm/stage transitions are
//!    `[0,0]` and logically forced, so they outrank the schedulable
//!    decisions (`t_r`, `t_g`, `t_c`);
//! 2. *disarm before miss* — an instance completing exactly at its
//!    deadline is on time, so `t_pc` must beat `t_d`;
//! 3. *miss last* — `t_d` has the lowest priority of all, so a
//!    computation ending exactly at the deadline (`t_c`, then `t_f`,
//!    then `t_pc`) wins the race against the miss transition.

/// Priority levels used by the generated nets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

impl Priority {
    /// `t_start` / `t_end`: structural fork and join.
    pub const FORK_JOIN: Priority = Priority(0);
    /// `t_pc`: deadline-watcher disarm on completion.
    pub const DEADLINE_CHECK: Priority = Priority(1);
    /// `t_f`: task-instance finish bookkeeping.
    pub const FINISH: Priority = Priority(2);
    /// Relation stages: precedence grants, exclusion-lock acquisition,
    /// message receives.
    pub const STAGE: Priority = Priority(3);
    /// Timed sources `t_ph` and `t_a`: forced periodic arrivals.
    pub const SOURCE: Priority = Priority(10);
    /// Scheduling decisions: `t_r`, `t_g`, `t_c` and bus transitions.
    pub const DECISION: Priority = Priority(50);
    /// `t_d`: deadline miss, deliberately last (see rule 3 above).
    pub const MISS: Priority = Priority(200);

    /// The raw value handed to `ezrt_tpn`.
    pub fn value(self) -> u32 {
        self.0
    }

    /// Whether transitions at this priority are *bookkeeping*: logically
    /// forced `[0,0]` steps whose mutual order cannot affect reachable
    /// schedules. The scheduler's partial-order reduction fires these
    /// without branching when they are conflict-free.
    pub fn is_bookkeeping(self) -> bool {
        self <= Priority::SOURCE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_encodes_the_three_rules() {
        assert!(
            Priority::DEADLINE_CHECK < Priority::MISS,
            "disarm before miss"
        );
        assert!(
            Priority::FINISH < Priority::DECISION,
            "bookkeeping before decisions"
        );
        assert!(
            Priority::DECISION < Priority::MISS,
            "computation beats miss at the deadline"
        );
        assert!(Priority::FORK_JOIN < Priority::DEADLINE_CHECK);
        assert!(Priority::STAGE < Priority::SOURCE);
    }

    #[test]
    fn bookkeeping_classification() {
        assert!(Priority::FORK_JOIN.is_bookkeeping());
        assert!(Priority::DEADLINE_CHECK.is_bookkeeping());
        assert!(Priority::FINISH.is_bookkeeping());
        assert!(Priority::STAGE.is_bookkeeping());
        assert!(Priority::SOURCE.is_bookkeeping());
        assert!(!Priority::DECISION.is_bookkeeping());
        assert!(!Priority::MISS.is_bookkeeping());
    }

    #[test]
    fn value_round_trips() {
        assert_eq!(Priority::DECISION.value(), 50);
        assert_eq!(Priority(7).value(), 7);
    }
}
