//! Building blocks and net composition: the ezRealtime specification →
//! time Petri net translation (paper §3.3).
//!
//! The translation assembles, for every task, the blocks of Figs. 1 and 2:
//!
//! * a **fork block** starting all tasks (`t_start`, interval `[0,0]`);
//! * a **periodic task arrival block** per task: `t_ph` (interval
//!   `[ph_i, ph_i]`) releases the first instance and deposits the
//!   remaining `N(t_i) − 1` instance tokens, which `t_a` (interval
//!   `[p_i, p_i]`) releases one per period;
//! * a **deadline checking block** per task: every arrival arms a watcher
//!   place; `t_d` (interval `[d_i, d_i]`) fires into a *deadline-miss*
//!   place if the watcher is still armed, while `t_pc` (interval `[0,0]`)
//!   disarms it when the instance completes;
//! * a **task structure block** per task — non-preemptive (Fig. 2(a):
//!   `t_r [r, d−c] → t_g [0,0] → t_c [c,c] → t_f [0,0]`) or preemptive
//!   (Fig. 2(b): the computation is split into `[1,1]` unit steps, each
//!   releasing the processor, with budget/done places of weight `c_i`);
//! * a **processor block** per processor: a single resource place holding
//!   one token, granting mutually exclusive execution;
//! * a **join block** consuming `N(t_i)` finished tokens per task; its
//!   output place marks the desired final marking `MF` (Def. 3.2).
//!
//! Inter-task relations add structure between release and grant
//! (paper §3.3.2): precedence inserts a `t_prec [0,0]` stage consuming a
//! token produced by the predecessor's finish transition (Fig. 3);
//! exclusion inserts a lock-acquire stage per pair sharing a one-token
//! lock place returned at finish (Fig. 4); messages insert a bus-transfer
//! pipeline (grant → transfer over a shared bus resource) feeding a
//! receive stage.
//!
//! The result is a [`TaskNet`]: the net plus the semantic map
//! ([`TransitionRole`]) the scheduler, code generator and benchmarks need
//! to interpret firings as task-level events.
//!
//! # Examples
//!
//! ```
//! use ezrt_spec::corpus::mine_pump;
//! use ezrt_compose::translate;
//!
//! let tasknet = translate(&mine_pump());
//! // 10 tasks, each with arrival, deadline-checking and task structure
//! // blocks, plus fork/join and one processor place.
//! assert!(tasknet.net().place_count() > 80);
//! assert!(!tasknet.is_final(tasknet.net().initial_marking()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod operators;
mod priority;
mod relations;
mod roles;
mod tasknet;
mod translate;

pub use priority::Priority;
pub use roles::TransitionRole;
pub use tasknet::{TaskNet, TaskTransitions};
pub use translate::translate;
