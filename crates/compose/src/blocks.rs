//! The building blocks of paper Figs. 1 and 2.
//!
//! Each function grows a shared [`Assembly`] (a `TpnBuilder` plus the
//! role map) by one block. Blocks are pure net surgery; the orchestration
//! — which blocks to instantiate and how relation stages chain between
//! release and grant — lives in [`translate`](crate::translate).

use crate::priority::Priority;
use crate::roles::TransitionRole;
use ezrt_spec::{SchedulingMethod, Task, TaskId};
use ezrt_tpn::{PlaceId, TimeInterval, TpnBuilder, TransitionId};

/// A net under construction: the builder plus the transition role map,
/// kept in lockstep (one role per transition, in creation order).
#[derive(Debug, Default)]
pub struct Assembly {
    /// The underlying net builder.
    pub builder: TpnBuilder,
    /// Transition roles, indexed like the builder's transitions.
    pub roles: Vec<TransitionRole>,
}

impl Assembly {
    /// Starts an empty assembly for a net called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Assembly {
            builder: TpnBuilder::new(name),
            roles: Vec::new(),
        }
    }

    /// Adds a transition together with its role.
    pub fn transition(
        &mut self,
        name: String,
        interval: TimeInterval,
        priority: Priority,
        role: TransitionRole,
    ) -> TransitionId {
        let id = self
            .builder
            .transition_full(name, interval, priority.value(), None);
        self.roles.push(role);
        debug_assert_eq!(self.roles.len(), self.builder.transition_count());
        id
    }
}

/// Handles to every place and transition of one task's blocks (arrival +
/// deadline checking + task structure), as produced by
/// [`add_task_blocks`].
#[derive(Debug, Clone)]
pub struct TaskBlocks {
    /// The task these blocks model.
    pub task: TaskId,
    /// `p_st` — start place fed by the fork block.
    pub start: PlaceId,
    /// `p_wa` — wait-arrival pool holding the `N − 1` remaining instance
    /// tokens (absent when the task has a single instance).
    pub wait_arrival: Option<PlaceId>,
    /// `p_wr` — wait-release: an instance has arrived.
    pub wait_release: PlaceId,
    /// `p_wg` — wait-grant: released (and past all relation stages),
    /// competing for the processor.
    pub wait_grant: PlaceId,
    /// `p_wc` — executing on the processor.
    pub computing: PlaceId,
    /// `p_wf` — computed, awaiting finish bookkeeping (non-preemptive
    /// shape only).
    pub wait_finish: Option<PlaceId>,
    /// `p_bud` — remaining computation budget (preemptive shape only).
    pub budget: Option<PlaceId>,
    /// `p_done` — completed unit steps (preemptive shape only).
    pub done: Option<PlaceId>,
    /// `p_wpc` — finished, awaiting the deadline-watcher disarm.
    pub wait_check: PlaceId,
    /// `p_wd` — the armed deadline watcher.
    pub watcher: PlaceId,
    /// `p_dm` — deadline-miss flag place; marked means "prune this state".
    pub miss: PlaceId,
    /// `p_f` — per-instance completion tokens consumed by the join block.
    pub finished: PlaceId,
    /// `t_ph` — phase transition, interval `[ph, ph]`.
    pub t_phase: TransitionId,
    /// `t_a` — periodic arrival, interval `[p, p]` (absent when `N == 1`).
    pub t_arrival: Option<TransitionId>,
    /// `t_r` — release, interval `[r, d − c]`. Its output arc is wired by
    /// the caller (directly to `wait_grant`, or through relation stages).
    pub t_release: TransitionId,
    /// `t_g` — processor grant, interval `[0, 0]`.
    pub t_grant: TransitionId,
    /// `t_c` — computation: `[c, c]` non-preemptive, `[1, 1]` preemptive.
    pub t_compute: TransitionId,
    /// `t_f` — finish, interval `[0, 0]`.
    pub t_finish: TransitionId,
    /// `t_pc` — deadline-watcher disarm, interval `[0, 0]`.
    pub t_check: TransitionId,
    /// `t_d` — deadline miss, interval `[d, d]`.
    pub t_miss: TransitionId,
}

/// Adds the fork block (Fig. 1(a)): one initially marked place and the
/// `t_start [0,0]` transition placing one token into each target (the
/// tasks' start places).
pub fn add_fork(asm: &mut Assembly, targets: &[PlaceId]) -> (PlaceId, TransitionId) {
    let p_start = asm.builder.place_with_tokens("pstart", 1);
    let t_start = asm.transition(
        "tstart".to_owned(),
        TimeInterval::immediate(),
        Priority::FORK_JOIN,
        TransitionRole::Fork,
    );
    asm.builder.arc_place_to_transition(p_start, t_start, 1);
    for &target in targets {
        asm.builder.arc_transition_to_place(t_start, target, 1);
    }
    (p_start, t_start)
}

/// Adds the join block (Fig. 1(b)): `t_end [0,0]` consumes `weight`
/// tokens from each finished place (one per task instance) and marks
/// `p_end`, the place whose marking defines the desired final marking
/// `MF`; `m(p_end) = 1` indicates a feasible firing schedule was found
/// (Def. 3.2).
pub fn add_join(asm: &mut Assembly, finished: &[(PlaceId, u32)]) -> (PlaceId, TransitionId) {
    let p_end = asm.builder.place("pend");
    let t_end = asm.transition(
        "tend".to_owned(),
        TimeInterval::immediate(),
        Priority::FORK_JOIN,
        TransitionRole::Join,
    );
    for &(place, weight) in finished {
        asm.builder.arc_place_to_transition(place, t_end, weight);
    }
    asm.builder.arc_transition_to_place(t_end, p_end, 1);
    (p_end, t_end)
}

/// Adds a processor block (Fig. 1, processor resource): a single place
/// holding one token, used as a side condition by grant/compute
/// transitions so execution is mutually exclusive per processor.
pub fn add_processor(asm: &mut Assembly, name: &str) -> PlaceId {
    asm.builder.place_with_tokens(format!("pproc_{name}"), 1)
}

/// Adds all three per-task blocks — periodic arrival (Fig. 1(c)),
/// deadline checking (Fig. 1(d)) and the task structure (Fig. 2(a) or
/// 2(b) depending on the scheduling method) — for `task`, bound to the
/// processor resource place `processor`.
///
/// The release transition `t_r` is left without an output arc: the caller
/// wires it either straight to `wait_grant` or through relation stages
/// (paper §3.3.2).
///
/// # Panics
///
/// Panics if `instances == 0`; the hyper-period construction guarantees
/// at least one instance per task.
pub fn add_task_blocks(
    asm: &mut Assembly,
    task_id: TaskId,
    task: &Task,
    instances: u64,
    processor: PlaceId,
) -> TaskBlocks {
    assert!(instances > 0, "a periodic task has at least one instance");
    let timing = task.timing();
    let n = task.name();
    let i = task_id.index();

    // ---- places shared by the three blocks -------------------------------
    let start = asm.builder.place(format!("pst{i}_{n}"));
    let wait_release = asm.builder.place(format!("pwr{i}_{n}"));
    let wait_grant = asm.builder.place(format!("pwg{i}_{n}"));
    let computing = asm.builder.place(format!("pwc{i}_{n}"));
    let wait_check = asm.builder.place(format!("pwpc{i}_{n}"));
    let watcher = asm.builder.place(format!("pwd{i}_{n}"));
    let miss = asm.builder.place(format!("pdm{i}_{n}"));
    let finished = asm.builder.place(format!("pf{i}_{n}"));

    // ---- periodic task arrival block (Fig. 1(c)) -------------------------
    // t_ph [ph, ph] releases the first instance (arming its deadline
    // watcher) and parks the remaining N−1 instance tokens in p_wa; t_a
    // [p, p] then releases one instance per period — its clock resets on
    // every firing (Def. 3.1, case t_k = t), which is exactly the
    // periodicity the block needs.
    let t_phase = asm.transition(
        format!("tph{i}_{n}"),
        TimeInterval::exact(timing.phase),
        Priority::SOURCE,
        TransitionRole::Phase(task_id),
    );
    asm.builder.arc_place_to_transition(start, t_phase, 1);
    asm.builder
        .arc_transition_to_place(t_phase, wait_release, 1);
    asm.builder.arc_transition_to_place(t_phase, watcher, 1);

    let (wait_arrival, t_arrival) = if instances > 1 {
        let wait_arrival = asm.builder.place(format!("pwa{i}_{n}"));
        // The weight a_i = N(t_i) − 1 "models the invocation of all
        // remaining instances after the first task instance" (§3.3.1).
        asm.builder
            .arc_transition_to_place(t_phase, wait_arrival, (instances - 1) as u32);
        let t_arrival = asm.transition(
            format!("ta{i}_{n}"),
            TimeInterval::exact(timing.period),
            Priority::SOURCE,
            TransitionRole::Arrival(task_id),
        );
        asm.builder
            .arc_place_to_transition(wait_arrival, t_arrival, 1);
        asm.builder
            .arc_transition_to_place(t_arrival, wait_release, 1);
        asm.builder.arc_transition_to_place(t_arrival, watcher, 1);
        (Some(wait_arrival), Some(t_arrival))
    } else {
        (None, None)
    };

    // ---- deadline checking block (Fig. 1(d)) -----------------------------
    // t_d [d, d] fires into the miss place while the watcher is armed;
    // t_pc [0, 0] disarms it when the instance has finished. Priorities
    // make "finish exactly at the deadline" count as met (see Priority).
    let t_miss = asm.transition(
        format!("td{i}_{n}"),
        TimeInterval::exact(timing.deadline),
        Priority::MISS,
        TransitionRole::DeadlineMiss(task_id),
    );
    asm.builder.arc_place_to_transition(watcher, t_miss, 1);
    asm.builder.arc_transition_to_place(t_miss, miss, 1);

    let t_check = asm.transition(
        format!("tpc{i}_{n}"),
        TimeInterval::immediate(),
        Priority::DEADLINE_CHECK,
        TransitionRole::DeadlineCheck(task_id),
    );
    asm.builder.arc_place_to_transition(watcher, t_check, 1);
    asm.builder.arc_place_to_transition(wait_check, t_check, 1);
    asm.builder.arc_transition_to_place(t_check, finished, 1);

    // ---- task structure block (Fig. 2) -----------------------------------
    // t_r [r, d−c]: the window within which the instance must start; its
    // output is wired by the caller (possibly through relation stages).
    let t_release = asm.transition(
        format!("tr{i}_{n}"),
        TimeInterval::new(timing.release, timing.latest_start())
            .expect("spec validation guarantees r + c <= d"),
        Priority::DECISION,
        TransitionRole::Release(task_id),
    );
    asm.builder
        .arc_place_to_transition(wait_release, t_release, 1);

    let t_grant = asm.transition(
        format!("tg{i}_{n}"),
        TimeInterval::immediate(),
        Priority::DECISION,
        TransitionRole::Grant(task_id),
    );
    asm.builder.arc_place_to_transition(wait_grant, t_grant, 1);
    asm.builder.arc_place_to_transition(processor, t_grant, 1);
    asm.builder.arc_transition_to_place(t_grant, computing, 1);

    let t_finish = asm.transition(
        format!("tf{i}_{n}"),
        TimeInterval::immediate(),
        Priority::FINISH,
        TransitionRole::Finish(task_id),
    );

    let (t_compute, wait_finish, budget, done) = match task.method() {
        SchedulingMethod::NonPreemptive => {
            // Fig. 2(a): t_c [c, c] holds the processor for the whole
            // computation, then releases it.
            let wait_finish = asm.builder.place(format!("pwf{i}_{n}"));
            let t_compute = asm.transition(
                format!("tc{i}_{n}"),
                TimeInterval::exact(timing.computation),
                Priority::DECISION,
                TransitionRole::Compute(task_id),
            );
            asm.builder.arc_place_to_transition(computing, t_compute, 1);
            asm.builder
                .arc_transition_to_place(t_compute, wait_finish, 1);
            asm.builder.arc_transition_to_place(t_compute, processor, 1);
            asm.builder
                .arc_place_to_transition(wait_finish, t_finish, 1);
            (t_compute, Some(wait_finish), None, None)
        }
        SchedulingMethod::Preemptive => {
            // Fig. 2(b): the computation is split into [1,1] unit steps;
            // each step releases the processor (a preemption point) and
            // moves one token from the budget pool to the done pool — the
            // weight-c arcs visible in Fig. 4 ("10 10" / "20 20").
            let budget = asm.builder.place(format!("pbud{i}_{n}"));
            let done = asm.builder.place(format!("pdone{i}_{n}"));
            asm.builder
                .arc_transition_to_place(t_release, budget, timing.computation as u32);
            let t_compute = asm.transition(
                format!("tc{i}_{n}"),
                TimeInterval::exact(1),
                Priority::DECISION,
                TransitionRole::Compute(task_id),
            );
            asm.builder.arc_place_to_transition(computing, t_compute, 1);
            asm.builder.arc_place_to_transition(budget, t_compute, 1);
            asm.builder
                .arc_transition_to_place(t_compute, wait_grant, 1);
            asm.builder.arc_transition_to_place(t_compute, processor, 1);
            asm.builder.arc_transition_to_place(t_compute, done, 1);
            asm.builder
                .arc_place_to_transition(done, t_finish, timing.computation as u32);
            asm.builder.arc_place_to_transition(wait_grant, t_finish, 1);
            (t_compute, None, Some(budget), Some(done))
        }
    };

    asm.builder.arc_transition_to_place(t_finish, wait_check, 1);
    if let Some(code) = task.code() {
        asm.builder.set_code(t_compute, code.content());
    }

    TaskBlocks {
        task: task_id,
        start,
        wait_arrival,
        wait_release,
        wait_grant,
        computing,
        wait_finish,
        budget,
        done,
        wait_check,
        watcher,
        miss,
        finished,
        t_phase,
        t_arrival,
        t_release,
        t_grant,
        t_compute,
        t_finish,
        t_check,
        t_miss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezrt_spec::SpecBuilder;

    fn single_task_spec(preemptive: bool) -> ezrt_spec::EzSpec {
        SpecBuilder::new("one")
            .task("T", move |t| {
                let t = t.release(5).computation(10).deadline(40).period(50);
                if preemptive {
                    t.preemptive()
                } else {
                    t
                }
            })
            .build()
            .unwrap()
    }

    fn assemble(preemptive: bool, instances: u64) -> (Assembly, TaskBlocks) {
        let spec = single_task_spec(preemptive);
        let mut asm = Assembly::new("blocks-test");
        let proc_place = add_processor(&mut asm, "cpu0");
        let blocks = add_task_blocks(
            &mut asm,
            TaskId::from_index(0),
            spec.task_by_name("T").unwrap(),
            instances,
            proc_place,
        );
        (asm, blocks)
    }

    fn finish_net(
        mut asm: Assembly,
        blocks: &TaskBlocks,
        instances: u32,
    ) -> ezrt_tpn::TimePetriNet {
        // Wire release directly to grant and close the net with fork/join
        // so it builds.
        asm.builder
            .arc_transition_to_place(blocks.t_release, blocks.wait_grant, 1);
        add_fork(&mut asm, &[blocks.start]);
        add_join(&mut asm, &[(blocks.finished, instances)]);
        asm.builder.build().unwrap()
    }

    #[test]
    fn nonpreemptive_structure_matches_figure_2a() {
        let (asm, blocks) = assemble(false, 3);
        let net = finish_net(asm, &blocks, 3);
        // t_r carries the release window [r, d - c] = [5, 30].
        let tr = net.transition(blocks.t_release);
        assert_eq!(tr.interval(), TimeInterval::new(5, 30).unwrap());
        // t_g is immediate, t_c is [c, c], t_f immediate.
        assert!(net.transition(blocks.t_grant).interval().is_immediate());
        assert_eq!(
            net.transition(blocks.t_compute).interval(),
            TimeInterval::exact(10)
        );
        assert!(net.transition(blocks.t_finish).interval().is_immediate());
        // Non-preemptive: no budget/done pools, a wait-finish place exists.
        assert!(blocks.budget.is_none());
        assert!(blocks.done.is_none());
        assert!(blocks.wait_finish.is_some());
    }

    #[test]
    fn preemptive_structure_matches_figure_2b() {
        let (asm, blocks) = assemble(true, 1);
        let net = finish_net(asm, &blocks, 1);
        // Unit-step computation.
        assert_eq!(
            net.transition(blocks.t_compute).interval(),
            TimeInterval::exact(1)
        );
        // Budget and done arcs carry weight c = 10 (the Fig. 4 weights).
        let budget = blocks.budget.unwrap();
        let done = blocks.done.unwrap();
        assert!(net
            .post_set(blocks.t_release)
            .iter()
            .any(|&(p, w)| p == budget && w == 10));
        assert!(net
            .pre_set(blocks.t_finish)
            .iter()
            .any(|&(p, w)| p == done && w == 10));
        // Each unit step releases the processor: t_c produces into pproc.
        let proc_place = net.place_id("pproc_cpu0").unwrap();
        assert!(net
            .post_set(blocks.t_compute)
            .iter()
            .any(|&(p, _)| p == proc_place));
    }

    #[test]
    fn arrival_block_weights_model_remaining_instances() {
        let (asm, blocks) = assemble(false, 4);
        let net = finish_net(asm, &blocks, 4);
        let wa = blocks.wait_arrival.unwrap();
        // t_ph deposits N − 1 = 3 tokens into the wait-arrival pool.
        assert!(net
            .post_set(blocks.t_phase)
            .iter()
            .any(|&(p, w)| p == wa && w == 3));
        // t_a is [p, p] = [50, 50].
        assert_eq!(
            net.transition(blocks.t_arrival.unwrap()).interval(),
            TimeInterval::exact(50)
        );
        // Phase of this task is 0, so t_ph is [0, 0].
        assert!(net.transition(blocks.t_phase).interval().is_immediate());
    }

    #[test]
    fn single_instance_task_has_no_arrival_transition() {
        let (asm, blocks) = assemble(false, 1);
        assert!(blocks.wait_arrival.is_none());
        assert!(blocks.t_arrival.is_none());
        let net = finish_net(asm, &blocks, 1);
        assert!(net.transition_id("ta0_T").is_none());
    }

    #[test]
    fn deadline_block_intervals_and_arcs() {
        let (asm, blocks) = assemble(false, 1);
        let net = finish_net(asm, &blocks, 1);
        assert_eq!(
            net.transition(blocks.t_miss).interval(),
            TimeInterval::exact(40)
        );
        assert!(net.transition(blocks.t_check).interval().is_immediate());
        // Both arrival paths arm the watcher; the miss and check both
        // consume it; check also needs the finish token.
        assert!(net
            .pre_set(blocks.t_miss)
            .iter()
            .any(|&(p, _)| p == blocks.watcher));
        assert!(net
            .pre_set(blocks.t_check)
            .iter()
            .any(|&(p, _)| p == blocks.watcher));
        assert!(net
            .pre_set(blocks.t_check)
            .iter()
            .any(|&(p, _)| p == blocks.wait_check));
    }

    #[test]
    fn happy_path_run_of_a_single_np_instance() {
        // Drive the assembled single-task net through one full instance
        // and check we land exactly on MF = {pend, pproc}.
        let (asm, blocks) = assemble(false, 1);
        let net = finish_net(asm, &blocks, 1);
        let mut state = net.initial_state();
        let mut names = Vec::new();
        for _ in 0..12 {
            let fireable = net.fireable(&state);
            if fireable.is_empty() {
                break;
            }
            let t = fireable[0];
            let (dlb, _) = net.firing_domain(&state, t).unwrap();
            let (next, _) = net.fire(&state, t, dlb).unwrap();
            names.push(net.transition(t).name().to_owned());
            state = next;
        }
        assert_eq!(
            names,
            vec!["tstart", "tph0_T", "tr0_T", "tg0_T", "tc0_T", "tf0_T", "tpc0_T", "tend"],
            "the single-instance happy path fires each block once"
        );
        let pend = net.place_id("pend").unwrap();
        let pproc = net.place_id("pproc_cpu0").unwrap();
        assert_eq!(state.marking().tokens(pend), 1);
        assert_eq!(state.marking().tokens(pproc), 1);
        assert_eq!(state.marking().total_tokens(), 2);
    }

    #[test]
    fn preemptive_happy_path_counts_unit_steps() {
        let (asm, blocks) = assemble(true, 1);
        let net = finish_net(asm, &blocks, 1);
        let mut state = net.initial_state();
        let mut compute_firings = 0;
        let mut clock = 0u64;
        for _ in 0..40 {
            let fireable = net.fireable(&state);
            if fireable.is_empty() {
                break;
            }
            let t = fireable[0];
            let (dlb, _) = net.firing_domain(&state, t).unwrap();
            let (next, firing) = net.fire(&state, t, dlb).unwrap();
            clock += firing.delay();
            if t == blocks.t_compute {
                compute_firings += 1;
            }
            state = next;
        }
        assert_eq!(compute_firings, 10, "c = 10 unit steps");
        let pend = net.place_id("pend").unwrap();
        assert_eq!(state.marking().tokens(pend), 1);
        // Released at r = 5 (earliest), computed 10 units back-to-back.
        assert_eq!(clock, 15);
    }

    #[test]
    fn processor_block_is_a_single_marked_place() {
        let mut asm = Assembly::new("proc");
        let p = add_processor(&mut asm, "arm9");
        asm.builder.transition("t", TimeInterval::immediate());
        asm.roles.push(TransitionRole::Fork); // keep maps aligned for the test
        let net = asm.builder.build().unwrap();
        assert_eq!(net.place(p).name(), "pproc_arm9");
        assert_eq!(net.place(p).initial_tokens(), 1);
    }

    #[test]
    fn missed_deadline_marks_the_miss_place() {
        // A task that is never granted the processor (we steal the token)
        // must fire t_d at exactly d and mark p_dm.
        let spec = single_task_spec(false);
        let mut asm = Assembly::new("miss");
        let proc_place = add_processor(&mut asm, "cpu0");
        let blocks = add_task_blocks(
            &mut asm,
            TaskId::from_index(0),
            spec.task_by_name("T").unwrap(),
            1,
            proc_place,
        );
        asm.builder
            .arc_transition_to_place(blocks.t_release, blocks.wait_grant, 1);
        // A thief transition hogs the processor forever.
        let hog = asm.builder.place_with_tokens("hog", 1);
        let t_hog = asm.builder.transition("thog", TimeInterval::immediate());
        asm.roles.push(TransitionRole::Fork);
        asm.builder.arc_place_to_transition(hog, t_hog, 1);
        asm.builder.arc_place_to_transition(proc_place, t_hog, 1);
        add_fork(&mut asm, &[blocks.start]);
        add_join(&mut asm, &[(blocks.finished, 1)]);
        let net = asm.builder.build().unwrap();

        let mut state = net.initial_state();
        let mut miss_time = 0u64;
        for _ in 0..10 {
            let fireable = net.fireable(&state);
            if fireable.is_empty() {
                break;
            }
            let t = fireable[0];
            let (dlb, _) = net.firing_domain(&state, t).unwrap();
            let (next, firing) = net.fire(&state, t, dlb).unwrap();
            miss_time += firing.delay();
            state = next;
            if state.marking().tokens(blocks.miss) > 0 {
                break;
            }
        }
        assert_eq!(state.marking().tokens(blocks.miss), 1);
        assert_eq!(miss_time, 40, "t_d fires exactly at the deadline");
    }
}
