//! Net composition operators.
//!
//! The paper builds task models "by composition of building blocks" and
//! notes that "this work adopts several operators for building block
//! compositions", deferring their definitions to Barreto's thesis. This
//! module provides that operator algebra as a reusable public API over
//! [`Assembly`]: the translation in [`translate`](crate::translate) is
//! expressible entirely in terms of these operators, and they are
//! available to users who want to hand-compose nets block by block.
//!
//! * [`sequence`] — serial composition: route a transition's output into
//!   a place (arc addition);
//! * [`fuse_places`] — place fusion: merge two places into one, the
//!   classic operator for gluing blocks that share a state;
//! * [`add_side_condition`] — self-loop composition: make a place a
//!   side condition of a transition (test-and-restore), how resources
//!   guard computations;
//! * [`synchronize`] — transition synchronization: merge two `[0,0]`
//!   transitions into one that fires their union atomically.

use crate::blocks::Assembly;
use ezrt_tpn::{PlaceId, TransitionId};

/// Serial composition: adds the arc `transition → place` with `weight`,
/// so whatever the transition produces continues into the block that
/// `place` begins.
///
/// # Examples
///
/// ```
/// use ezrt_compose::blocks::Assembly;
/// use ezrt_compose::operators::sequence;
/// use ezrt_compose::{Priority, TransitionRole};
/// use ezrt_tpn::TimeInterval;
///
/// let mut asm = Assembly::new("seq");
/// let a = asm.builder.place_with_tokens("a", 1);
/// let b = asm.builder.place("b");
/// let t = asm.transition("t".into(), TimeInterval::immediate(),
///                        Priority::DECISION, TransitionRole::Fork);
/// asm.builder.arc_place_to_transition(a, t, 1);
/// sequence(&mut asm, t, b, 1);
/// let net = asm.builder.build().unwrap();
/// assert_eq!(net.post_set(t), &[(b, 1)]);
/// ```
pub fn sequence(asm: &mut Assembly, transition: TransitionId, place: PlaceId, weight: u32) {
    asm.builder
        .arc_transition_to_place(transition, place, weight);
}

/// Place fusion: redirects every arc touching `duplicate` onto `keep`
/// and isolates `duplicate` (its initial tokens move to `keep`).
///
/// Petri-net composition glues blocks by identifying a place of one
/// block with a place of another; since [`TpnBuilder`](ezrt_tpn::TpnBuilder)
/// ids are stable, the fused-away place remains in the net as an
/// isolated, empty place (harmless for behaviour; reported by
/// [`analysis::isolated_places`](ezrt_tpn::analysis::isolated_places)).
pub fn fuse_places(asm: &mut Assembly, keep: PlaceId, duplicate: PlaceId) {
    assert_ne!(keep, duplicate, "cannot fuse a place with itself");
    // Fusing may legitimately move no arcs (a not-yet-wired block).
    let _moved = redirect_arcs(asm, duplicate, keep);
}

/// Moves all arcs from `from` to `to`; returns whether any arc moved.
fn redirect_arcs(asm: &mut Assembly, from: PlaceId, to: PlaceId) -> bool {
    let mut moved = false;
    let transition_count = asm.builder.transition_count();
    for index in 0..transition_count {
        let t = TransitionId::from_index(index);
        if let Some(weight) = asm.builder.take_input_arc(from, t) {
            asm.builder.arc_place_to_transition(to, t, weight);
            moved = true;
        }
        if let Some(weight) = asm.builder.take_output_arc(t, from) {
            asm.builder.arc_transition_to_place(t, to, weight);
            moved = true;
        }
    }
    let tokens = asm.builder.initial_tokens(from);
    if tokens > 0 {
        asm.builder.set_initial_tokens(from, 0);
        let existing = asm.builder.initial_tokens(to);
        asm.builder.set_initial_tokens(to, existing + tokens);
        moved = true;
    }
    moved
}

/// Side-condition composition: `place` becomes both input and output of
/// `transition` (a self-loop), so the transition *tests* the place
/// without consuming it across the firing — the processor and lock
/// places of the ezRealtime blocks are side conditions of grant/compute
/// pairs split across two transitions; a true self-loop is the one-shot
/// variant.
pub fn add_side_condition(asm: &mut Assembly, place: PlaceId, transition: TransitionId) {
    asm.builder.arc_place_to_transition(place, transition, 1);
    asm.builder.arc_transition_to_place(transition, place, 1);
}

/// Transition synchronization: gives `absorbed`'s pre- and post-sets to
/// `survivor` and disconnects `absorbed` by stripping all its arcs,
/// then marking it structurally dead (an empty-pre-set transition would
/// fire freely, so `absorbed` keeps one inhibiting input: a fresh,
/// empty, producer-less place).
///
/// Both transitions should be immediate (`[0,0]`) for the merge to be
/// behaviour-preserving; this is asserted.
///
/// # Panics
///
/// Panics if the transitions are equal or either is not immediate.
pub fn synchronize(asm: &mut Assembly, survivor: TransitionId, absorbed: TransitionId) {
    assert_ne!(
        survivor, absorbed,
        "cannot synchronize a transition with itself"
    );
    assert!(
        asm.builder.interval_of(survivor).is_immediate()
            && asm.builder.interval_of(absorbed).is_immediate(),
        "synchronization requires immediate transitions"
    );
    let place_count = asm.builder.place_count();
    for index in 0..place_count {
        let p = PlaceId::from_index(index);
        if let Some(weight) = asm.builder.take_input_arc(p, absorbed) {
            asm.builder.arc_place_to_transition(p, survivor, weight);
        }
        if let Some(weight) = asm.builder.take_output_arc(absorbed, p) {
            asm.builder.arc_transition_to_place(survivor, p, weight);
        }
    }
    let blocker = asm.builder.place(format!("pdead_{}", absorbed.index()));
    asm.builder.arc_place_to_transition(blocker, absorbed, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::Priority;
    use crate::roles::TransitionRole;
    use ezrt_tpn::{analysis, TimeInterval};

    fn assembly() -> Assembly {
        Assembly::new("operators")
    }

    fn immediate(asm: &mut Assembly, name: &str) -> TransitionId {
        asm.transition(
            name.to_owned(),
            TimeInterval::immediate(),
            Priority::DECISION,
            TransitionRole::Fork,
        )
    }

    #[test]
    fn fuse_places_moves_arcs_and_tokens() {
        let mut asm = assembly();
        let keep = asm.builder.place("keep");
        let dup = asm.builder.place_with_tokens("dup", 2);
        let producer = immediate(&mut asm, "producer");
        let consumer = immediate(&mut asm, "consumer");
        let src = asm.builder.place_with_tokens("src", 1);
        asm.builder.arc_place_to_transition(src, producer, 1);
        asm.builder.arc_transition_to_place(producer, dup, 1);
        asm.builder.arc_place_to_transition(dup, consumer, 2);

        fuse_places(&mut asm, keep, dup);
        let net = asm.builder.build().unwrap();
        // All of dup's connections now belong to keep.
        assert!(net
            .post_set(producer)
            .iter()
            .any(|&(p, w)| p == keep && w == 1));
        assert!(net
            .pre_set(consumer)
            .iter()
            .any(|&(p, w)| p == keep && w == 2));
        assert_eq!(net.place(keep).initial_tokens(), 2);
        assert_eq!(net.place(dup).initial_tokens(), 0);
        assert!(analysis::isolated_places(&net).contains(&dup));
    }

    #[test]
    #[should_panic(expected = "fuse a place with itself")]
    fn fuse_rejects_identity() {
        let mut asm = assembly();
        let p = asm.builder.place("p");
        immediate(&mut asm, "t");
        fuse_places(&mut asm, p, p);
    }

    #[test]
    fn side_condition_restores_tokens() {
        let mut asm = assembly();
        let resource = asm.builder.place_with_tokens("res", 1);
        let src = asm.builder.place_with_tokens("src", 1);
        let t = immediate(&mut asm, "t");
        asm.builder.arc_place_to_transition(src, t, 1);
        add_side_condition(&mut asm, resource, t);
        let net = asm.builder.build().unwrap();

        let s0 = net.initial_state();
        let (s1, _) = net.fire(&s0, t, 0).unwrap();
        assert_eq!(s1.marking().tokens(resource), 1, "side condition restored");
        assert_eq!(s1.marking().tokens(src), 0);
    }

    #[test]
    fn synchronize_merges_pre_and_post_sets() {
        let mut asm = assembly();
        let a = asm.builder.place_with_tokens("a", 1);
        let b = asm.builder.place_with_tokens("b", 1);
        let out_a = asm.builder.place("out_a");
        let out_b = asm.builder.place("out_b");
        let ta = immediate(&mut asm, "ta");
        let tb = immediate(&mut asm, "tb");
        asm.builder.arc_place_to_transition(a, ta, 1);
        asm.builder.arc_transition_to_place(ta, out_a, 1);
        asm.builder.arc_place_to_transition(b, tb, 1);
        asm.builder.arc_transition_to_place(tb, out_b, 1);

        synchronize(&mut asm, ta, tb);
        let net = asm.builder.build().unwrap();
        // ta now consumes both inputs and produces both outputs.
        let s0 = net.initial_state();
        let (s1, _) = net.fire(&s0, ta, 0).unwrap();
        assert_eq!(s1.marking().tokens(out_a), 1);
        assert_eq!(s1.marking().tokens(out_b), 1);
        // tb is structurally dead.
        assert!(analysis::structurally_dead_transitions(&net).contains(&tb));
    }

    #[test]
    #[should_panic(expected = "immediate transitions")]
    fn synchronize_rejects_timed_transitions() {
        let mut asm = assembly();
        let timed = asm.transition(
            "timed".into(),
            TimeInterval::exact(3),
            Priority::DECISION,
            TransitionRole::Fork,
        );
        let quick = immediate(&mut asm, "quick");
        synchronize(&mut asm, quick, timed);
    }

    #[test]
    fn sequence_is_plain_arc_addition() {
        let mut asm = assembly();
        let p = asm.builder.place("p");
        let t = immediate(&mut asm, "t");
        let src = asm.builder.place_with_tokens("s", 1);
        asm.builder.arc_place_to_transition(src, t, 1);
        sequence(&mut asm, t, p, 3);
        let net = asm.builder.build().unwrap();
        assert_eq!(net.post_set(t), &[(p, 3)]);
    }
}
