//! Semantic labels mapping net transitions back to task-level events.

use ezrt_spec::{MessageId, TaskId};
use std::fmt;

/// What a transition of a translated net *means* at the specification
/// level. The scheduler uses roles for branch ordering and timeline
/// reconstruction; the code generator turns `Compute` firings into
/// schedule-table entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionRole {
    /// `t_start` — the fork block's single transition.
    Fork,
    /// `t_end` — the join block's single transition; firing it reaches the
    /// desired final marking `MF`.
    Join,
    /// `t_ph` — the phase offset of a task's first instance.
    Phase(TaskId),
    /// `t_a` — periodic arrival of the remaining instances.
    Arrival(TaskId),
    /// `t_r` — instance release (interval `[r, d−c]`): the scheduling
    /// window within which the task must start.
    Release(TaskId),
    /// `t_g` — processor grant: execution (or resumption) begins.
    Grant(TaskId),
    /// `t_c` — computation: the whole WCET for non-preemptive tasks, one
    /// time unit for preemptive tasks.
    Compute(TaskId),
    /// `t_f` — instance finish bookkeeping.
    Finish(TaskId),
    /// `t_pc` — deadline-watcher disarm (completion before the deadline).
    DeadlineCheck(TaskId),
    /// `t_d` — deadline miss; any state marked by this transition's output
    /// is pruned by the search.
    DeadlineMiss(TaskId),
    /// `t_prec` — precedence grant: `from`'s finish token admits `to`.
    PrecedenceGrant {
        /// The predecessor task.
        from: TaskId,
        /// The successor task being admitted.
        to: TaskId,
    },
    /// `t_excl` — exclusion-lock acquisition by `task` against `partner`.
    ExclusionAcquire {
        /// The acquiring task.
        task: TaskId,
        /// The exclusion partner the lock is shared with.
        partner: TaskId,
    },
    /// Bus arbitration grant for a message.
    BusGrant(MessageId),
    /// Bus transfer of a message.
    BusTransfer(MessageId),
    /// Message delivery stage on the receiver side.
    MessageReceive {
        /// The delivered message.
        message: MessageId,
        /// The receiving task.
        to: TaskId,
    },
}

impl TransitionRole {
    /// The task this transition belongs to, when it is task-local.
    pub fn task(&self) -> Option<TaskId> {
        match *self {
            TransitionRole::Phase(t)
            | TransitionRole::Arrival(t)
            | TransitionRole::Release(t)
            | TransitionRole::Grant(t)
            | TransitionRole::Compute(t)
            | TransitionRole::Finish(t)
            | TransitionRole::DeadlineCheck(t)
            | TransitionRole::DeadlineMiss(t) => Some(t),
            TransitionRole::ExclusionAcquire { task, .. } => Some(task),
            TransitionRole::PrecedenceGrant { to, .. } => Some(to),
            TransitionRole::MessageReceive { to, .. } => Some(to),
            TransitionRole::Fork
            | TransitionRole::Join
            | TransitionRole::BusGrant(_)
            | TransitionRole::BusTransfer(_) => None,
        }
    }

    /// Whether this is the computation transition whose firings occupy
    /// processor time.
    pub fn is_compute(&self) -> bool {
        matches!(self, TransitionRole::Compute(_))
    }
}

impl fmt::Display for TransitionRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionRole::Fork => write!(f, "fork"),
            TransitionRole::Join => write!(f, "join"),
            TransitionRole::Phase(t) => write!(f, "phase({t})"),
            TransitionRole::Arrival(t) => write!(f, "arrival({t})"),
            TransitionRole::Release(t) => write!(f, "release({t})"),
            TransitionRole::Grant(t) => write!(f, "grant({t})"),
            TransitionRole::Compute(t) => write!(f, "compute({t})"),
            TransitionRole::Finish(t) => write!(f, "finish({t})"),
            TransitionRole::DeadlineCheck(t) => write!(f, "deadline-check({t})"),
            TransitionRole::DeadlineMiss(t) => write!(f, "deadline-miss({t})"),
            TransitionRole::PrecedenceGrant { from, to } => {
                write!(f, "precedence({from}->{to})")
            }
            TransitionRole::ExclusionAcquire { task, partner } => {
                write!(f, "exclusion({task} vs {partner})")
            }
            TransitionRole::BusGrant(m) => write!(f, "bus-grant({m})"),
            TransitionRole::BusTransfer(m) => write!(f, "bus-transfer({m})"),
            TransitionRole::MessageReceive { message, to } => {
                write!(f, "receive({message}->{to})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: usize) -> TaskId {
        TaskId::from_index(i)
    }

    #[test]
    fn task_extraction() {
        assert_eq!(TransitionRole::Compute(tid(2)).task(), Some(tid(2)));
        assert_eq!(
            TransitionRole::PrecedenceGrant {
                from: tid(0),
                to: tid(1)
            }
            .task(),
            Some(tid(1)),
            "a precedence stage belongs to the admitted successor"
        );
        assert_eq!(TransitionRole::Fork.task(), None);
        assert_eq!(
            TransitionRole::BusGrant(MessageId::from_index(0)).task(),
            None
        );
    }

    #[test]
    fn compute_detection() {
        assert!(TransitionRole::Compute(tid(0)).is_compute());
        assert!(!TransitionRole::Grant(tid(0)).is_compute());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TransitionRole::Fork.to_string(), "fork");
        assert_eq!(
            TransitionRole::Release(tid(3)).to_string(),
            "release(task3)"
        );
        assert_eq!(
            TransitionRole::ExclusionAcquire {
                task: tid(0),
                partner: tid(1)
            }
            .to_string(),
            "exclusion(task0 vs task1)"
        );
    }
}
