//! The specification → time Petri net translation (paper §4.3's
//! `ezRealtime2PNML` transformation engine, minus the XML detour).
//!
//! The model-generation recipe follows the five steps listed in the
//! paper: *"i) generate a model for arrival, deadline, and task structure
//! blocks for each task; ii) generate each precedence and exclusion
//! relations; iii) generate each inter-tasks communication; iv) generate
//! the fork block; and v) generate the join block."*

use crate::blocks::{add_fork, add_join, add_processor, add_task_blocks, Assembly, TaskBlocks};
use crate::priority::Priority;
use crate::relations::{add_exclusion, add_message, add_precedence, wire_release_chain, Stage};
use crate::tasknet::{TaskNet, TaskTransitions};
use ezrt_spec::EzSpec;
use ezrt_tpn::{DependencyMatrix, Marking};
use std::collections::BTreeMap;

/// Translates a validated specification into a [`TaskNet`].
///
/// The translation is total for validated specifications: every task gets
/// its arrival, deadline-checking and task-structure blocks; relations
/// and messages become stages chained between release and grant in a
/// canonical order (precedences by predecessor, then message receives by
/// message id, then exclusion locks by partner id — locks are acquired
/// last, and in a globally consistent order).
///
/// # Panics
///
/// Panics if `spec` does not satisfy [`EzSpec::validate`]; the builder
/// API makes unvalidated specifications unrepresentable, so this only
/// concerns hand-rolled `EzSpec` values.
///
/// # Examples
///
/// ```
/// use ezrt_compose::translate;
/// use ezrt_spec::corpus::figure3_spec;
///
/// let tasknet = translate(&figure3_spec());
/// let net = tasknet.net();
/// // Fig. 3 structure: T1's release window is [0, 85].
/// let tr1 = net.transition_id("tr0_T1").unwrap();
/// assert_eq!(net.transition(tr1).interval().to_string(), "[0, 85]");
/// ```
pub fn translate(spec: &EzSpec) -> TaskNet {
    spec.validate()
        .expect("translate requires a validated specification");

    let hyperperiod = spec.hyperperiod();
    let mut asm = Assembly::new(spec.name());

    // Processor resource places (Fig. 1, processor block).
    let processor_places: Vec<_> = spec
        .processors()
        .map(|(_, p)| add_processor(&mut asm, p.name()))
        .collect();

    // Step i: arrival + deadline + task structure blocks per task.
    let instances: Vec<u64> = spec
        .tasks()
        .map(|(_, t)| hyperperiod / t.timing().period)
        .collect();
    let blocks: Vec<TaskBlocks> = spec
        .tasks()
        .map(|(id, task)| {
            add_task_blocks(
                &mut asm,
                id,
                task,
                instances[id.index()],
                processor_places[task.processor().index()],
            )
        })
        .collect();

    // Bus resource places, one per distinct bus name.
    let mut bus_places = BTreeMap::new();
    for (_, m) in spec.messages() {
        bus_places.entry(m.bus().to_owned()).or_insert_with(|| {
            asm.builder
                .place_with_tokens(format!("pbus_{}", m.bus()), 1)
        });
    }

    // Steps ii and iii: relations and communications become stages.
    // Stage sort keys keep chains canonical: (kind, counterpart index).
    let mut stages: Vec<Vec<((u8, usize), Stage)>> = vec![Vec::new(); spec.task_count()];
    for &(from, to) in spec.precedences() {
        let (_, stage) = add_precedence(&mut asm, &blocks[from.index()], &blocks[to.index()]);
        stages[to.index()].push(((0, from.index()), stage));
    }
    for (mid, message) in spec.messages() {
        let bus = bus_places[message.bus()];
        let stage = add_message(
            &mut asm,
            mid,
            message,
            &blocks[message.sender().index()],
            &blocks[message.receiver().index()],
            bus,
        );
        stages[message.receiver().index()].push(((1, mid.index()), stage));
    }
    let mut lock_places = Vec::new();
    for &(a, b) in spec.exclusions() {
        let (lock, stage_a, stage_b) =
            add_exclusion(&mut asm, &blocks[a.index()], &blocks[b.index()]);
        lock_places.push(lock);
        stages[a.index()].push(((2, b.index()), stage_a));
        stages[b.index()].push(((2, a.index()), stage_b));
    }
    for (i, task_stages) in stages.iter_mut().enumerate() {
        task_stages.sort_by_key(|&(key, _)| key);
        let ordered: Vec<Stage> = task_stages.iter().map(|&(_, s)| s).collect();
        wire_release_chain(&mut asm, &blocks[i], &ordered);
    }

    // Steps iv and v: fork and join.
    let starts: Vec<_> = blocks.iter().map(|b| b.start).collect();
    add_fork(&mut asm, &starts);
    let finished: Vec<_> = blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.finished, instances[i] as u32))
        .collect();
    let (end_place, _) = add_join(&mut asm, &finished);

    let roles = std::mem::take(&mut asm.roles);
    let net = asm
        .builder
        .build()
        .expect("translation emits structurally valid nets");

    // The desired final marking MF: p_end plus every resource restored.
    let mut final_marking = Marking::empty(net.place_count());
    final_marking.set(end_place, 1);
    for &p in &processor_places {
        final_marking.set(p, 1);
    }
    for &p in bus_places.values() {
        final_marking.set(p, 1);
    }
    for &p in &lock_places {
        final_marking.set(p, 1);
    }

    let miss_places = blocks.iter().map(|b| b.miss).collect();
    let task_transitions = blocks
        .iter()
        .map(|b| TaskTransitions {
            phase: b.t_phase,
            arrival: b.t_arrival,
            release: b.t_release,
            grant: b.t_grant,
            compute: b.t_compute,
            finish: b.t_finish,
            deadline_check: b.t_check,
            deadline_miss: b.t_miss,
        })
        .collect();

    // Partial-order-reduction precompute: the structural conflict matrix,
    // extended so that transitions of one task are mutually dependent
    // (they are program-ordered — a reduction must never commute them),
    // plus the memoized bookkeeping-priority bitmask.
    let mut deps = DependencyMatrix::from_net(&net);
    let mut by_task: Vec<Vec<ezrt_tpn::TransitionId>> = vec![Vec::new(); spec.task_count()];
    for (i, role) in roles.iter().enumerate() {
        if let Some(task) = role.task() {
            by_task[task.index()].push(ezrt_tpn::TransitionId::from_index(i));
        }
    }
    for members in &by_task {
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                deps.mark_dependent(a, b);
            }
        }
    }
    let mut bookkeeping = vec![0u64; net.transition_count().div_ceil(64).max(1)];
    let mut urgent = vec![0u64; net.transition_count().div_ceil(64).max(1)];
    for (t, transition) in net.transitions() {
        if Priority(transition.priority()).is_bookkeeping() {
            ezrt_tpn::por::set_bit(&mut bookkeeping, t.index());
            // The urgent cascades sleep-set maintenance reorders past are
            // the forced [0, 0] bookkeeping firings; exact timed sources
            // (arrivals) are bookkeeping too, but they advance time and
            // thus never ride inside a cascade.
            if transition.interval() == ezrt_tpn::TimeInterval::exact(0) {
                ezrt_tpn::por::set_bit(&mut urgent, t.index());
            }
        }
    }
    deps.build_sleep_closure(&net, &urgent);

    TaskNet {
        net,
        spec: spec.clone(),
        roles,
        miss_places,
        final_marking,
        end_place,
        processor_places,
        task_transitions,
        instances,
        deps,
        bookkeeping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::TransitionRole;
    use ezrt_spec::corpus::{figure3_spec, figure4_spec, mine_pump, small_control};
    use ezrt_spec::SpecBuilder;
    use ezrt_tpn::analysis;

    #[test]
    fn mine_pump_net_has_expected_shape() {
        let tasknet = translate(&mine_pump());
        let net = tasknet.net();
        // 10 tasks × 8 places (st, wr, wg, wc, wf, wpc, wd, dm, f = 9 for
        // NP plus wa) + fork/join/proc: sanity-check the magnitude rather
        // than an exact constant.
        assert!(net.place_count() >= 90, "got {}", net.place_count());
        assert!(
            net.transition_count() >= 80,
            "got {}",
            net.transition_count()
        );
        // Every task contributes exactly one miss place.
        assert_eq!(tasknet.miss_places().len(), 10);
        // The net is structurally clean.
        assert!(analysis::source_transitions(net).is_empty());
        assert!(analysis::isolated_places(net).is_empty());
        assert!(analysis::structurally_dead_transitions(net).is_empty());
    }

    #[test]
    fn mine_pump_minimum_firing_count() {
        let tasknet = translate(&mine_pump());
        // 782 instances × 5 lifecycle firings (t_r, t_g, t_c, t_f, t_pc)
        // + 782 arrival firings (t_ph + t_a's) + fork + join.
        assert_eq!(tasknet.minimum_firing_count(), 782 * 5 + 782 + 2);
    }

    #[test]
    fn processor_invariant_holds_for_mine_pump() {
        let tasknet = translate(&mine_pump());
        let net = tasknet.net();
        // pproc + every task's computing place carries exactly one token.
        let mut component = vec![(
            tasknet.processor_place(ezrt_spec::ProcessorId::from_index(0)),
            1i64,
        )];
        for (id, _) in tasknet.spec().tasks() {
            let grant = tasknet.transitions_of(id).grant;
            // The computing place is t_g's only output.
            let (computing, _) = net.post_set(grant)[0];
            component.push((computing, 1));
        }
        assert!(analysis::is_place_invariant(net, &component));
        assert_eq!(analysis::invariant_value(net, &component), 1);
    }

    #[test]
    fn figure3_precedence_structure() {
        let tasknet = translate(&figure3_spec());
        let net = tasknet.net();
        // Release windows from the figure: [0, 85] and [0, 130].
        assert_eq!(
            net.transition(net.transition_id("tr0_T1").unwrap())
                .interval()
                .to_string(),
            "[0, 85]"
        );
        assert_eq!(
            net.transition(net.transition_id("tr1_T2").unwrap())
                .interval()
                .to_string(),
            "[0, 130]"
        );
        // No arrival transitions: one instance each within P_S = 250.
        assert!(net.transition_id("ta0_T1").is_none());
        // The precedence stage exists with the right role.
        let tprec = net.transition_id("tprec_0_1").expect("precedence stage");
        assert!(matches!(
            tasknet.role(tprec),
            TransitionRole::PrecedenceGrant { .. }
        ));
        // Deadline-watch transitions carry [100,100] and [150,150].
        assert_eq!(
            net.transition(net.transition_id("td0_T1").unwrap())
                .interval()
                .to_string(),
            "[100, 100]"
        );
        assert_eq!(
            net.transition(net.transition_id("td1_T2").unwrap())
                .interval()
                .to_string(),
            "[150, 150]"
        );
    }

    #[test]
    fn figure4_exclusion_structure() {
        let tasknet = translate(&figure4_spec());
        let net = tasknet.net();
        // Preemptive unit-step computations.
        for name in ["tc0_T0", "tc1_T2"] {
            assert_eq!(
                net.transition(net.transition_id(name).unwrap())
                    .interval()
                    .to_string(),
                "[1, 1]"
            );
        }
        // Budget weights 10 and 20 — the weights visible in Fig. 4.
        let tr0 = net.transition_id("tr0_T0").unwrap();
        let tr2 = net.transition_id("tr1_T2").unwrap();
        assert!(net.post_set(tr0).iter().any(|&(_, w)| w == 10));
        assert!(net.post_set(tr2).iter().any(|&(_, w)| w == 20));
        // One shared lock place, initially marked.
        let lock = net.place_id("pexcl_0_1").expect("lock place");
        assert_eq!(net.place(lock).initial_tokens(), 1);
        assert_eq!(net.consumers(lock).len(), 2, "both acquire stages");
        assert_eq!(net.producers(lock).len(), 2, "both finish transitions");
    }

    #[test]
    fn stages_chain_in_canonical_order() {
        // A task with both a predecessor and an exclusion: the precedence
        // stage must come before the lock stage.
        let spec = SpecBuilder::new("chain-order")
            .task("pred", |t| t.computation(1).deadline(10).period(20))
            .task("succ", |t| t.computation(1).deadline(20).period(20))
            .task("other", |t| t.computation(1).deadline(20).period(20))
            .precedes("pred", "succ")
            .excludes("succ", "other")
            .build()
            .unwrap();
        let tasknet = translate(&spec);
        let net = tasknet.net();
        let succ_release = tasknet
            .transitions_of(spec.task_id("succ").unwrap())
            .release;
        // Release feeds the precedence entry, not the lock entry.
        let (first_entry, _) = net.post_set(succ_release)[0];
        assert!(net.place(first_entry).name().starts_with("pwp_"));
        // The precedence stage feeds the exclusion entry.
        let tprec = net.transition_id("tprec_0_1").unwrap();
        let (second_entry, _) = net.post_set(tprec)[0];
        assert!(net.place(second_entry).name().starts_with("pwe_"));
    }

    #[test]
    fn final_marking_contains_resources_only() {
        let tasknet = translate(&small_control());
        let mf = tasknet.final_marking();
        // p_end + cpu0 + one exclusion lock.
        assert_eq!(mf.total_tokens(), 3);
        assert!(tasknet.is_final(mf));
        assert!(!tasknet.is_final(tasknet.net().initial_marking()));
    }

    #[test]
    fn roles_cover_every_transition() {
        let tasknet = translate(&small_control());
        for (t, _) in tasknet.net().transitions() {
            // role() panics on out-of-range; being callable for every id
            // means the role map is complete.
            let _ = tasknet.role(t);
        }
        // Spot-check role/task mapping.
        let sense = tasknet.spec().task_id("sense").unwrap();
        let tr = tasknet.transitions_of(sense).release;
        assert_eq!(tasknet.role(tr), TransitionRole::Release(sense));
        assert_eq!(tasknet.task_of(tr), Some(sense));
    }

    #[test]
    fn miss_detection_queries() {
        let tasknet = translate(&small_control());
        let mut marking = tasknet.net().initial_marking().clone();
        assert!(!tasknet.has_deadline_miss(&marking));
        assert!(tasknet.missed_tasks(&marking).is_empty());
        marking.set(tasknet.miss_places()[2], 1);
        assert!(tasknet.has_deadline_miss(&marking));
        assert_eq!(
            tasknet.missed_tasks(&marking),
            vec![ezrt_spec::TaskId::from_index(2)]
        );
    }

    #[test]
    fn multiprocessor_specs_get_one_resource_place_each() {
        let spec = SpecBuilder::new("dual")
            .task("a", |t| {
                t.computation(1).deadline(5).period(10).on_processor("p0")
            })
            .task("b", |t| {
                t.computation(1).deadline(5).period(10).on_processor("p1")
            })
            .build()
            .unwrap();
        let tasknet = translate(&spec);
        let net = tasknet.net();
        // cpu0 is the implicit default plus p0/p1 (tasks referenced both).
        assert!(net.place_id("pproc_p0").is_some());
        assert!(net.place_id("pproc_p1").is_some());
        // Each task's grant consumes its own processor.
        let a = spec.task_id("a").unwrap();
        let ga = tasknet.transitions_of(a).grant;
        let pa = tasknet.processor_place(spec.task(a).processor());
        assert!(net.pre_set(ga).iter().any(|&(p, _)| p == pa));
    }

    #[test]
    fn message_pipeline_is_translated() {
        let spec = SpecBuilder::new("msg")
            .task("tx", |t| t.computation(1).deadline(10).period(20))
            .task("rx", |t| t.computation(1).deadline(20).period(20))
            .message("m", "tx", "rx", "can0", 0, 3)
            .build()
            .unwrap();
        let tasknet = translate(&spec);
        let net = tasknet.net();
        assert!(net.place_id("pbus_can0").is_some());
        let tmt = net.transition_id("tmt0_m").unwrap();
        assert_eq!(net.transition(tmt).interval().to_string(), "[3, 3]");
        assert!(matches!(tasknet.role(tmt), TransitionRole::BusTransfer(_)));
        // MF restores the bus token.
        let bus = net.place_id("pbus_can0").unwrap();
        assert_eq!(tasknet.final_marking().tokens(bus), 1);
    }

    #[test]
    fn compute_transitions_carry_task_code() {
        let tasknet = translate(&mine_pump());
        let net = tasknet.net();
        for (id, task) in tasknet.spec().tasks() {
            let tc = tasknet.transitions_of(id).compute;
            assert_eq!(
                net.transition(tc).code(),
                task.code().map(|c| c.content()),
                "CS binding for {}",
                task.name()
            );
        }
    }

    #[test]
    fn minimum_firing_count_includes_bus_firings() {
        let spec = SpecBuilder::new("msg-count")
            .task("tx", |t| t.computation(1).deadline(10).period(10))
            .task("rx", |t| t.computation(1).deadline(10).period(10))
            .message("m", "tx", "rx", "can0", 0, 1)
            .build()
            .unwrap();
        let tasknet = translate(&spec);
        // Hyperperiod 10 → 1 instance each. Per NP instance: t_ph + t_r +
        // t_g + t_c + t_f + t_pc = 6; rx additionally passes its receive
        // stage (+1); the message adds grant + transfer (+2); fork + join.
        assert_eq!(tasknet.minimum_firing_count(), 6 + 7 + 2 + 2);
    }

    #[test]
    fn phase_offsets_reach_the_phase_transition() {
        let spec = SpecBuilder::new("phased")
            .task("late", |t| t.phase(7).computation(1).deadline(5).period(10))
            .build()
            .unwrap();
        let tasknet = translate(&spec);
        let net = tasknet.net();
        let late = spec.task_id("late").unwrap();
        let tph = tasknet.transitions_of(late).phase;
        assert_eq!(net.transition(tph).interval().to_string(), "[7, 7]");
    }
}
