//! [`TaskNet`]: a translated net plus the semantic maps needed to
//! interpret it at the task level.

use crate::roles::TransitionRole;
use ezrt_spec::{EzSpec, ProcessorId, SchedulingMethod, TaskId};
use ezrt_tpn::{DependencyMatrix, Marking, PlaceId, TimePetriNet, TransitionId};

/// The key transitions of one task's blocks, by role.
#[derive(Debug, Clone, Copy)]
pub struct TaskTransitions {
    /// `t_ph` — phase / first arrival.
    pub phase: TransitionId,
    /// `t_a` — subsequent arrivals (absent when the task has a single
    /// instance in the schedule period).
    pub arrival: Option<TransitionId>,
    /// `t_r` — release.
    pub release: TransitionId,
    /// `t_g` — processor grant.
    pub grant: TransitionId,
    /// `t_c` — computation.
    pub compute: TransitionId,
    /// `t_f` — finish.
    pub finish: TransitionId,
    /// `t_pc` — deadline-watcher disarm.
    pub deadline_check: TransitionId,
    /// `t_d` — deadline miss.
    pub deadline_miss: TransitionId,
}

/// A specification translated into a time Petri net, together with the
/// maps the scheduler, simulator and code generator need:
///
/// * the [`TransitionRole`] of every transition;
/// * the deadline-miss places (states marking them are pruned);
/// * the desired final marking `MF` (Def. 3.2);
/// * per-task transition handles and instance counts.
///
/// Produced by [`translate`](crate::translate).
#[derive(Debug, Clone)]
pub struct TaskNet {
    pub(crate) net: TimePetriNet,
    pub(crate) spec: EzSpec,
    pub(crate) roles: Vec<TransitionRole>,
    pub(crate) miss_places: Vec<PlaceId>,
    pub(crate) final_marking: Marking,
    pub(crate) end_place: PlaceId,
    pub(crate) processor_places: Vec<PlaceId>,
    pub(crate) task_transitions: Vec<TaskTransitions>,
    pub(crate) instances: Vec<u64>,
    pub(crate) deps: DependencyMatrix,
    pub(crate) bookkeeping: Vec<u64>,
}

impl TaskNet {
    /// The underlying time Petri net.
    pub fn net(&self) -> &TimePetriNet {
        &self.net
    }

    /// The specification this net was translated from.
    pub fn spec(&self) -> &EzSpec {
        &self.spec
    }

    /// The semantic role of a transition.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not belong to this net.
    pub fn role(&self, t: TransitionId) -> TransitionRole {
        self.roles[t.index()]
    }

    /// The task a transition belongs to, when task-local.
    pub fn task_of(&self, t: TransitionId) -> Option<TaskId> {
        self.role(t).task()
    }

    /// The key transitions of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn transitions_of(&self, task: TaskId) -> &TaskTransitions {
        &self.task_transitions[task.index()]
    }

    /// Number of instances of `task` in the schedule period.
    pub fn instances_of(&self, task: TaskId) -> u64 {
        self.instances[task.index()]
    }

    /// The precomputed transition conflict/dependency relation: the
    /// structural *share-an-input-place* conflicts of the net, with
    /// same-task transitions additionally marked mutually dependent.
    /// Built once at translation time; the searches' partial-order
    /// reduction queries it with word operations instead of re-scanning
    /// pre-sets per state.
    pub fn deps(&self) -> &DependencyMatrix {
        &self.deps
    }

    /// Whether `t`'s priority class is bookkeeping (memoized bitmask over
    /// [`Priority::is_bookkeeping`](crate::Priority::is_bookkeeping), so
    /// the search's per-state class check is one bit test).
    #[inline]
    pub fn is_bookkeeping_transition(&self, t: TransitionId) -> bool {
        ezrt_tpn::por::test_bit(&self.bookkeeping, t.index())
    }

    /// The deadline-miss places `p_dm` (one per task).
    pub fn miss_places(&self) -> &[PlaceId] {
        &self.miss_places
    }

    /// The desired final marking `MF`: `p_end` plus every resource place
    /// (processors, exclusion locks, buses) holding one token.
    pub fn final_marking(&self) -> &Marking {
        &self.final_marking
    }

    /// The join block's output place `p_end`.
    pub fn end_place(&self) -> PlaceId {
        self.end_place
    }

    /// The resource place of `processor`.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is out of range.
    pub fn processor_place(&self, processor: ProcessorId) -> PlaceId {
        self.processor_places[processor.index()]
    }

    /// Whether `marking` is the desired final marking `MF` —
    /// `m(p_end) = 1` "indicates that a feasible firing schedule
    /// (Def. 3.2) was found".
    pub fn is_final(&self, marking: &Marking) -> bool {
        *marking == self.final_marking
    }

    /// Whether any deadline-miss place is marked; such states are
    /// "undesirable situations when considering hard real-time systems"
    /// and the search prunes them.
    pub fn has_deadline_miss(&self, marking: &Marking) -> bool {
        self.miss_places.iter().any(|&p| marking.tokens(p) > 0)
    }

    /// Packed-kernel counterpart of [`has_deadline_miss`](Self::has_deadline_miss):
    /// reads the token prefix of a packed state slice (see
    /// [`StateLayout`](ezrt_tpn::StateLayout)) without unpacking.
    pub fn has_deadline_miss_packed(&self, state: &[u32]) -> bool {
        self.miss_places.iter().any(|&p| state[p.index()] > 0)
    }

    /// Packed-kernel counterpart of [`is_final`](Self::is_final).
    pub fn is_final_packed(&self, state: &[u32]) -> bool {
        state[..self.final_marking.place_count()] == *self.final_marking.as_slice()
    }

    /// Packed-kernel counterpart of [`missed_tasks`](Self::missed_tasks):
    /// yields the missed tasks without allocating, so the searches'
    /// miss-pruning branches can mark a dense per-task flag directly.
    pub fn missed_tasks_packed_iter<'a>(
        &'a self,
        state: &'a [u32],
    ) -> impl Iterator<Item = TaskId> + 'a {
        self.miss_places
            .iter()
            .enumerate()
            .filter(|&(_, &p)| state[p.index()] > 0)
            .map(|(i, _)| TaskId::from_index(i))
    }

    /// The tasks whose miss place is marked in `marking` — diagnostics
    /// for infeasibility reports.
    pub fn missed_tasks(&self, marking: &Marking) -> Vec<TaskId> {
        self.miss_places
            .iter()
            .enumerate()
            .filter(|&(_, &p)| marking.tokens(p) > 0)
            .map(|(i, _)| TaskId::from_index(i))
            .collect()
    }

    /// The number of firings of a deadline-respecting run from `m0` to
    /// `MF` — every firing on such a run is forced, so this is exact, and
    /// it is this reproduction's analogue of the paper's "minimum number
    /// of states" (which is this count plus one, counting states rather
    /// than edges).
    ///
    /// Per task: one `t_ph`, `N−1` `t_a`, and per instance one `t_r`, one
    /// stage firing per relation stage, one `t_f`, one `t_pc`, plus the
    /// grant/compute firings (1 + 1 non-preemptive, `c + c` preemptive);
    /// messages add two bus firings per instance; plus `t_start` and
    /// `t_end`.
    pub fn minimum_firing_count(&self) -> u64 {
        let mut total = 2; // fork + join
        for (id, task) in self.spec.tasks() {
            let n = self.instances[id.index()];
            let stages = self.spec.predecessors(id).count()
                + self
                    .spec
                    .messages()
                    .filter(|(_, m)| m.receiver() == id)
                    .count()
                + self.spec.exclusion_partners(id).count();
            let grant_compute = match task.method() {
                SchedulingMethod::NonPreemptive => 2,
                SchedulingMethod::Preemptive => 2 * task.timing().computation,
            };
            // t_ph + t_a's…
            total += 1 + (n - 1);
            // …and the per-instance lifecycle.
            total += n * (1 + stages as u64 + grant_compute + 1 + 1);
        }
        for (_, m) in self.spec.messages() {
            // grant + transfer per instance of the (equal-period) pair.
            let n = self.instances[m.sender().index()];
            total += 2 * n;
        }
        total
    }

    /// Consumes the task net, returning the bare time Petri net (for
    /// PNML export, for example).
    pub fn into_net(self) -> TimePetriNet {
        self.net
    }
}
