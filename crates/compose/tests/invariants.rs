//! Structural correctness of translated nets, certified by automatic
//! place-invariant computation: every resource of the specification
//! (processor, exclusion lock, bus) must generate a conservation law in
//! the net — with no state-space exploration involved.

use ezrt_compose::translate;
use ezrt_spec::corpus::{figure4_spec, mine_pump, small_control};
use ezrt_tpn::invariants::place_invariants;
use ezrt_tpn::{analysis, PlaceId};

#[test]
fn mine_pump_processor_invariant_is_discovered() {
    let tasknet = translate(&mine_pump());
    let net = tasknet.net();
    let report = place_invariants(net, 50_000);
    assert!(!report.truncated, "farkas blew its budget");

    let proc_place = net.place_id("pproc_cpu0").unwrap();
    let processor_invariant = report
        .invariants
        .iter()
        .find(|inv| inv.weight(proc_place) > 0)
        .expect("the processor generates an invariant");
    // The invariant is exactly {pproc} ∪ {pwc of every task}, value 1.
    assert_eq!(processor_invariant.value(net), 1);
    assert_eq!(
        processor_invariant.support().count(),
        1 + tasknet.spec().task_count(),
        "pproc plus one computing place per task"
    );
    for (place, weight) in processor_invariant.support() {
        assert_eq!(weight, 1);
        let name = net.place(place).name();
        assert!(
            name.starts_with("pproc") || name.starts_with("pwc"),
            "unexpected place {name} in the processor invariant"
        );
    }
}

#[test]
fn exclusion_lock_generates_an_invariant() {
    let tasknet = translate(&figure4_spec());
    let net = tasknet.net();
    let report = place_invariants(net, 50_000);
    let lock = net.place_id("pexcl_0_1").unwrap();
    let lock_invariant = report
        .invariants
        .iter()
        .find(|inv| inv.weight(lock) > 0)
        .expect("the lock generates an invariant");
    assert_eq!(lock_invariant.value(net), 1, "one lock token, always");
    // Verified independently against the incidence check.
    let component: Vec<(PlaceId, i64)> = lock_invariant
        .support()
        .map(|(p, w)| (p, w as i64))
        .collect();
    assert!(analysis::is_place_invariant(net, &component));
}

#[test]
fn every_computed_invariant_of_small_control_verifies() {
    let tasknet = translate(&small_control());
    let net = tasknet.net();
    let report = place_invariants(net, 50_000);
    assert!(!report.invariants.is_empty());
    for invariant in &report.invariants {
        let component: Vec<(PlaceId, i64)> =
            invariant.support().map(|(p, w)| (p, w as i64)).collect();
        assert!(
            analysis::is_place_invariant(net, &component),
            "non-invariant from farkas: {component:?}"
        );
    }
}
