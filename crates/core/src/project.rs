//! The [`Project`] facade and its synthesis [`Outcome`].

use ezrt_codegen::{CodeGenerator, GeneratedSource, ScheduleTable, Target};
use ezrt_compose::{translate, TaskNet};
use ezrt_dsl::ParseDslError;
use ezrt_scheduler::validate::ScheduleViolation;
use ezrt_scheduler::{
    synthesize, synthesize_parallel, synthesize_seeded, FeasibleSchedule, Parallelism, PorLevel,
    SchedulerConfig, SearchStats, SynthesizeError, Timeline,
};
use ezrt_sim::dispatch::{execute, DispatchConfig};
use ezrt_sim::ExecutionReport;
use ezrt_spec::EzSpec;

/// An ezRealtime project: a specification plus the synthesis
/// configuration, with every pipeline stage one method call away.
#[derive(Debug, Clone)]
pub struct Project {
    spec: EzSpec,
    config: SchedulerConfig,
}

impl Project {
    /// Creates a project around a validated specification with the
    /// default scheduler configuration.
    pub fn new(spec: EzSpec) -> Self {
        Project {
            spec,
            config: SchedulerConfig::default(),
        }
    }

    /// Loads a project from an `<rt:ez-spec>` XML document (paper
    /// Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns [`ParseDslError`] when the document is malformed or the
    /// specification fails validation.
    pub fn from_dsl(document: &str) -> Result<Self, ParseDslError> {
        let _span = ezrt_obs::span("parse-dsl");
        Ok(Project::new(ezrt_dsl::from_xml(document)?))
    }

    /// Replaces the scheduler configuration.
    pub fn with_config(mut self, config: SchedulerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the synthesis worker count (the CLI's `--jobs`). One job —
    /// the default — runs the sequential search; more jobs route
    /// [`synthesize`](Self::synthesize) through the parallel engine.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.config.parallelism = Parallelism::new(jobs);
        self
    }

    /// Sets the partial-order reduction level (the CLI's `--por`).
    /// `Stubborn` — the default — prunes interleavings with stubborn
    /// and sleep sets; `Classic` reproduces the reference search
    /// byte-for-byte; `Off` disables even the classic bookkeeping
    /// collapse.
    pub fn with_por(mut self, por: PorLevel) -> Self {
        self.config.por = por;
        self
    }

    /// The specification.
    pub fn spec(&self) -> &EzSpec {
        &self.spec
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Translates the specification into its time Petri net without
    /// searching — useful for inspection, DOT rendering and PNML export
    /// of unsolved models.
    pub fn translate(&self) -> TaskNet {
        translate(&self.spec)
    }

    /// Canonical byte serialization of the parsed specification plus
    /// the result-relevant scheduler configuration (branch ordering,
    /// delay mode, partial-order reduction, budgets) — the stable
    /// pre-image `ezrt-server` digests into cache keys.
    ///
    /// Two XML documents that parse to the same specification
    /// (whitespace, attribute order) serialize identically, and
    /// [`Parallelism`] is deliberately excluded: the worker count only
    /// changes how fast a result is computed, never which result it is
    /// keyed under.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        crate::canonical::canonical_bytes(&self.spec, &self.config)
    }

    /// Per-task canonical byte slices, in specification order: each
    /// entry is `(task name, sub-digest pre-image)` covering that task's
    /// own timing and attributes plus the shape of its relations with
    /// partners referenced by *name*. The bytes are invariant under task
    /// reordering and XML formatting, and a timing edit on one task
    /// changes exactly that task's entry — so two specs diff
    /// structurally by comparing these slices, no parsing heuristics.
    pub fn task_canonical_bytes(&self) -> Vec<(String, Vec<u8>)> {
        self.spec
            .tasks()
            .map(|(id, task)| {
                (
                    task.name().to_owned(),
                    crate::canonical::task_bytes(&self.spec, id),
                )
            })
            .collect()
    }

    /// Canonical bytes of the specification's *structure* — task set,
    /// relation shape, per-task instance counts and the result-relevant
    /// config — with all timing values elided. Specs that differ only in
    /// task timing share structure bytes; the server's nearest-ancestor
    /// index keys warm-start candidates on the digest of this stream.
    pub fn structure_bytes(&self) -> Vec<u8> {
        crate::canonical::structure_bytes(&self.spec, &self.config)
    }

    /// The names of tasks whose sub-digest pre-image differs between
    /// this project's specification and `prev`, sorted. Tasks present on
    /// only one side count as changed. An empty result means every task
    /// is structurally and temporally identical across the two specs.
    pub fn changed_tasks(&self, prev: &EzSpec) -> Vec<String> {
        let theirs: std::collections::HashMap<&str, Vec<u8>> = prev
            .tasks()
            .map(|(id, task)| (task.name(), crate::canonical::task_bytes(prev, id)))
            .collect();
        let mut changed: Vec<String> = Vec::new();
        let mut matched = 0usize;
        for (id, task) in self.spec.tasks() {
            match theirs.get(task.name()) {
                Some(bytes) => {
                    matched += 1;
                    if *bytes != crate::canonical::task_bytes(&self.spec, id) {
                        changed.push(task.name().to_owned());
                    }
                }
                None => changed.push(task.name().to_owned()),
            }
        }
        // Tasks that exist only in `prev`.
        if matched < theirs.len() {
            for (_, task) in prev.tasks() {
                if self.spec.task_by_name(task.name()).is_none() {
                    changed.push(task.name().to_owned());
                }
            }
        }
        changed.sort();
        changed
    }

    /// Serializes the specification back to the XML DSL.
    pub fn to_dsl(&self) -> String {
        ezrt_dsl::to_xml(&self.spec)
    }

    /// Runs the full synthesis: translation, pre-runtime search (the
    /// sequential DFS, or the parallel engine when
    /// [`SchedulerConfig::parallelism`] asks for more than one job),
    /// timeline reconstruction and schedule-table derivation.
    ///
    /// Parallel results are double-checked before this returns: the
    /// scheduler already re-validated the schedule against the
    /// specification, and this method additionally replays it through the
    /// `ezrt_sim::replay` net-semantics oracle.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesizeError`] when no feasible schedule exists or a
    /// search budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if a parallel-found schedule fails the replay oracle — a
    /// kernel bug, never a property of the specification.
    pub fn synthesize(&self) -> Result<Outcome, SynthesizeError> {
        let _span = ezrt_obs::span("synthesize");
        let tasknet = {
            let _span = ezrt_obs::span("translate");
            translate(&self.spec)
        };
        let synthesis = if self.config.parallelism.is_sequential() {
            synthesize(&tasknet, &self.config)?
        } else {
            let synthesis = synthesize_parallel(&tasknet, &self.config)?;
            let _span = ezrt_obs::span("replay-oracle");
            if let Err(error) = ezrt_sim::replay::replay(&tasknet, &synthesis.schedule) {
                panic!(
                    "parallel synthesis produced a schedule the net-level replay oracle \
                     rejects (kernel bug): {error}"
                );
            }
            synthesis
        };
        let _derive = ezrt_obs::span("derive");
        let timeline = Timeline::from_schedule(&tasknet, &synthesis.schedule);
        let table = ScheduleTable::from_timeline(&self.spec, &timeline);
        Ok(Outcome {
            spec: self.spec.clone(),
            tasknet,
            schedule: synthesis.schedule,
            stats: synthesis.stats,
            timeline,
            table,
        })
    }

    /// Incremental synthesis warm-started from a prior schedule: `prev`
    /// is handed to the seeded search whole, which first tries a verbatim
    /// oracle replay (one linear pass, no search machinery) and otherwise
    /// truncates the seed at its first illegal step, re-validates every
    /// replayed firing as an ordinary DFS candidate and searches on from
    /// the replayed frontier. For an unchanged spec the whole schedule
    /// replays and the search visits zero new states; after a small
    /// timing edit the prefix typically covers everything up to the
    /// first genuinely affected firing.
    ///
    /// Sound by construction: seeding only permutes branch order at the
    /// replayed frames, so feasibility, infeasibility and budget
    /// verdicts are the same as cold synthesis would produce — and as a
    /// belt-and-braces check any seeded result is replayed end-to-end
    /// through the oracle here, falling back to a cold
    /// [`synthesize`](Self::synthesize) on rejection (never expected).
    ///
    /// The seeded path is sequential; configurations asking for more
    /// than one job route to the cold parallel engine, which beats
    /// prefix reuse at its own game on big misses.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesizeError`] when no feasible schedule exists or a
    /// search budget is exhausted — the same verdicts cold synthesis
    /// would return.
    pub fn synthesize_incremental(
        &self,
        prev: &FeasibleSchedule,
    ) -> Result<Outcome, SynthesizeError> {
        if !self.config.parallelism.is_sequential() {
            return self.synthesize();
        }
        let _span = ezrt_obs::span("synthesize-incremental");
        let tasknet = {
            let _span = ezrt_obs::span("translate");
            translate(&self.spec)
        };
        let synthesis = synthesize_seeded(&tasknet, &self.config, prev.firings())?;
        if synthesis.stats.incr_seed_hits > 0
            && ezrt_sim::replay::replay(&tasknet, &synthesis.schedule).is_err()
        {
            return self.synthesize();
        }
        let _derive = ezrt_obs::span("derive");
        let timeline = Timeline::from_schedule(&tasknet, &synthesis.schedule);
        let table = ScheduleTable::from_timeline(&self.spec, &timeline);
        Ok(Outcome {
            spec: self.spec.clone(),
            tasknet,
            schedule: synthesis.schedule,
            stats: synthesis.stats,
            timeline,
            table,
        })
    }
}

/// Everything a successful synthesis produces.
#[derive(Debug, Clone)]
pub struct Outcome {
    spec: EzSpec,
    /// The translated net with its semantic maps.
    pub tasknet: TaskNet,
    /// The feasible firing schedule (Def. 3.2).
    pub schedule: FeasibleSchedule,
    /// Search statistics (the §5 numbers).
    pub stats: SearchStats,
    /// The task-level execution timeline.
    pub timeline: Timeline,
    /// The Fig. 8 schedule table (first processor).
    pub table: ScheduleTable,
}

/// The owned pieces of an [`Outcome`], for layers that rehome them into
/// their own types (the artifact layer's `SynthesisOutcome` keeps the
/// spec and schedule for cache persistence and re-derives the rest).
#[derive(Debug, Clone)]
pub struct OutcomeParts {
    /// The specification the outcome belongs to.
    pub spec: EzSpec,
    /// The translated net with its semantic maps.
    pub tasknet: TaskNet,
    /// The feasible firing schedule.
    pub schedule: FeasibleSchedule,
    /// Search statistics.
    pub stats: SearchStats,
    /// The task-level execution timeline.
    pub timeline: Timeline,
    /// The Fig. 8 schedule table.
    pub table: ScheduleTable,
}

impl Outcome {
    /// The specification the outcome belongs to.
    pub fn spec(&self) -> &EzSpec {
        &self.spec
    }

    /// Decomposes the outcome into its owned parts.
    pub fn into_parts(self) -> OutcomeParts {
        OutcomeParts {
            spec: self.spec,
            tasknet: self.tasknet,
            schedule: self.schedule,
            stats: self.stats,
            timeline: self.timeline,
            table: self.table,
        }
    }

    /// Generates the scheduled C code for `target` (paper §4.4.2).
    pub fn generate_code(&self, target: Target) -> GeneratedSource {
        CodeGenerator::new(target).generate(&self.spec, &self.table)
    }

    /// Executes the schedule on the simulated dispatcher for one
    /// schedule period.
    pub fn execute(&self) -> ExecutionReport {
        self.execute_for(1)
    }

    /// Executes the schedule for `hyperperiods` schedule periods.
    ///
    /// # Panics
    ///
    /// Panics if `hyperperiods` is zero.
    pub fn execute_for(&self, hyperperiods: u64) -> ExecutionReport {
        execute(
            &self.spec,
            &self.timeline,
            &DispatchConfig {
                hyperperiods,
                ..DispatchConfig::default()
            },
        )
    }

    /// Re-validates the timeline against the specification with the
    /// net-independent checker; empty means valid.
    pub fn validate(&self) -> Vec<ScheduleViolation> {
        ezrt_scheduler::validate::check(&self.spec, &self.timeline)
    }

    /// Exports the synthesized time Petri net as PNML (ISO 15909-2).
    pub fn to_pnml(&self) -> String {
        ezrt_pnml::to_pnml(self.tasknet.net())
    }

    /// Renders the net as Graphviz DOT.
    pub fn to_dot(&self) -> String {
        ezrt_tpn::dot::to_dot(self.tasknet.net())
    }

    /// ASCII Gantt chart of the window `[from, to)`.
    pub fn gantt(&self, from: u64, to: u64) -> String {
        self.timeline.gantt(&self.tasknet, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezrt_spec::corpus::{mine_pump, small_control};

    #[test]
    fn full_pipeline_on_the_mine_pump() {
        let outcome = Project::new(mine_pump()).synthesize().expect("feasible");
        // §5 shape: visited within a few percent of the forced minimum.
        assert!(outcome.stats.overhead_ratio() < 1.05);
        assert_eq!(outcome.table.entries().len(), 782);
        assert!(outcome.validate().is_empty());
        let report = outcome.execute();
        assert!(report.is_timely());
        assert_eq!(report.max_release_jitter(), 0);
    }

    #[test]
    fn dsl_round_trip_through_project() {
        let project = Project::new(small_control());
        let document = project.to_dsl();
        let reloaded = Project::from_dsl(&document).expect("own dsl reloads");
        assert_eq!(reloaded.spec(), project.spec());
    }

    #[test]
    fn from_dsl_rejects_garbage() {
        assert!(Project::from_dsl("<nonsense/>").is_err());
    }

    #[test]
    fn exports_are_consistent() {
        let outcome = Project::new(small_control()).synthesize().unwrap();
        let pnml = outcome.to_pnml();
        assert!(pnml.contains("<pnml"));
        let reread = ezrt_pnml::from_pnml(&pnml).expect("own pnml rereads");
        assert_eq!(reread.place_count(), outcome.tasknet.net().place_count());
        let dot = outcome.to_dot();
        assert!(dot.starts_with("digraph"));
        let gantt = outcome.gantt(0, 20);
        assert!(gantt.contains('#'));
    }

    #[test]
    fn custom_config_is_used() {
        let config = SchedulerConfig {
            max_states: 1,
            ..SchedulerConfig::default()
        };
        let result = Project::new(small_control())
            .with_config(config)
            .synthesize();
        assert!(matches!(
            result,
            Err(SynthesizeError::StateLimitExceeded { .. })
        ));
    }

    #[test]
    fn parallel_project_synthesis_validates_and_executes() {
        for jobs in [2, 4] {
            let outcome = Project::new(small_control())
                .with_jobs(jobs)
                .synthesize()
                .expect("feasible");
            assert_eq!(outcome.stats.jobs, jobs);
            assert!(outcome.validate().is_empty());
            assert!(outcome.execute().is_timely());
        }
        // with_jobs(1) stays on the sequential path.
        let sequential = Project::new(small_control())
            .with_jobs(1)
            .synthesize()
            .expect("feasible");
        assert_eq!(sequential.stats.jobs, 1);
        assert_eq!(
            sequential.schedule,
            Project::new(small_control()).synthesize().unwrap().schedule
        );
    }

    #[test]
    fn with_por_reaches_the_scheduler() {
        let classic = Project::new(small_control())
            .with_por(PorLevel::Classic)
            .synthesize()
            .expect("feasible");
        let stubborn = Project::new(small_control())
            .synthesize()
            .expect("feasible");
        // Stubborn never explores more than the classic reference and
        // its schedule still passes the spec-level checker.
        assert!(stubborn.stats.states_visited <= classic.stats.states_visited);
        assert!(stubborn.validate().is_empty());
    }

    #[test]
    fn code_generation_reaches_all_targets() {
        let outcome = Project::new(small_control()).synthesize().unwrap();
        for target in Target::ALL {
            let code = outcome.generate_code(target);
            assert!(code.source.contains("ezrt_dispatch"), "{target}");
        }
    }
}
