//! The ezRealtime pipeline: specification → time Petri net → feasible
//! schedule → scheduled C code → simulated execution (paper Fig. 6).
//!
//! [`Project`] is the programmatic equivalent of the tool's GUI flow:
//!
//! 1. obtain a specification — built with
//!    [`SpecBuilder`](ezrt_spec::SpecBuilder), taken from
//!    [`corpus`](ezrt_spec::corpus), or loaded from the XML DSL with
//!    [`Project::from_dsl`];
//! 2. [`Project::synthesize`] translates it into the time Petri net
//!    (composition of building blocks), runs the pre-runtime depth-first
//!    search and reconstructs the execution timeline and the Fig. 8
//!    schedule table;
//! 3. the resulting [`Outcome`] generates C code for a chosen
//!    [`Target`](ezrt_codegen::Target), executes the schedule on the
//!    simulated dispatcher, re-validates it against the specification,
//!    and exports PNML.
//!
//! # Examples
//!
//! ```
//! use ezrt_core::Project;
//! use ezrt_codegen::Target;
//! use ezrt_spec::corpus::small_control;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let project = Project::new(small_control());
//! let outcome = project.synthesize()?;
//!
//! assert!(outcome.schedule.is_feasible());
//! assert!(outcome.validate().is_empty());
//!
//! let code = outcome.generate_code(Target::PosixSim);
//! assert!(code.source.contains("scheduleTable"));
//!
//! let report = outcome.execute_for(3);
//! assert!(report.is_timely());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod project;

pub use project::{Outcome, OutcomeParts, Project};
