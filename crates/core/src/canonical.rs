//! Canonical byte serialization of a specification plus its scheduler
//! configuration — the stable pre-image of `ezrt-server`'s spec digests.
//!
//! Two XML documents that parse to the same [`EzSpec`] (whitespace,
//! attribute order, escaping choices) produce the same byte stream, so
//! they map to the same cache key. The stream covers everything that
//! can change a synthesis *result*: every metamodel field of the spec
//! and the result-relevant scheduler knobs (branch ordering, delay
//! mode, partial-order reduction, state/time budgets). It deliberately
//! excludes [`Parallelism`](ezrt_scheduler::Parallelism): worker count
//! only changes how fast a miss is computed, never which key it
//! belongs to, so cached results are shared across `--jobs` values.
//!
//! The encoding is self-delimiting (length-prefixed strings, tagged
//! sections, fixed-width little-endian integers), so no two distinct
//! specifications can collide byte-wise by concatenation tricks. The
//! leading version tag makes any future format change alter every
//! digest deliberately rather than silently.

use ezrt_scheduler::{BranchOrdering, PorLevel, SchedulerConfig};
use ezrt_spec::{EzSpec, TaskId};
use ezrt_tpn::DelayMode;

/// Format version tag; bump when the encoding changes.
const VERSION: &[u8] = b"ezrt-canon-v1";

/// Format version tag of the per-task sub-digest pre-image.
const TASK_VERSION: &[u8] = b"ezrt-task-v1";

/// Format version tag of the structure-digest pre-image.
const STRUCTURE_VERSION: &[u8] = b"ezrt-struct-v1";

/// Section tags, one per metamodel region, so a decoder (or a human
/// with a hex dump) can tell where each part begins.
mod tag {
    pub const SPEC: u8 = 0x01;
    pub const TASK: u8 = 0x02;
    pub const PROCESSOR: u8 = 0x03;
    pub const MESSAGE: u8 = 0x04;
    pub const PRECEDES: u8 = 0x05;
    pub const EXCLUDES: u8 = 0x06;
    pub const CONFIG: u8 = 0x07;
}

/// Serializes `spec` + `config` into the canonical byte stream.
pub(crate) fn canonical_bytes(spec: &EzSpec, config: &SchedulerConfig) -> Vec<u8> {
    let mut out = Canon::default();
    out.bytes.extend_from_slice(VERSION);

    out.tag(tag::SPEC);
    out.str(spec.name());
    out.flag(spec.dispatcher_overhead());
    out.u64(spec.task_count() as u64);
    out.u64(spec.processors().count() as u64);
    out.u64(spec.messages().count() as u64);

    for (_, processor) in spec.processors() {
        out.tag(tag::PROCESSOR);
        out.str(processor.name());
    }
    for (_, task) in spec.tasks() {
        out.tag(tag::TASK);
        out.str(task.name());
        let timing = task.timing();
        out.u64(timing.phase);
        out.u64(timing.release);
        out.u64(timing.computation);
        out.u64(timing.deadline);
        out.u64(timing.period);
        out.u64(match task.method() {
            ezrt_spec::SchedulingMethod::NonPreemptive => 0,
            ezrt_spec::SchedulingMethod::Preemptive => 1,
        });
        out.u64(task.processor().index() as u64);
        out.u64(task.energy());
        match task.code() {
            Some(code) => {
                out.flag(true);
                out.str(code.content());
            }
            None => out.flag(false),
        }
    }
    for (_, message) in spec.messages() {
        out.tag(tag::MESSAGE);
        out.str(message.name());
        out.str(message.bus());
        out.u64(message.sender().index() as u64);
        out.u64(message.receiver().index() as u64);
        out.u64(message.grant_bus());
        out.u64(message.communication());
    }
    out.tag(tag::PRECEDES);
    out.u64(spec.precedences().len() as u64);
    for &(predecessor, successor) in spec.precedences() {
        out.u64(predecessor.index() as u64);
        out.u64(successor.index() as u64);
    }
    out.tag(tag::EXCLUDES);
    out.u64(spec.exclusions().len() as u64);
    for &(a, b) in spec.exclusions() {
        out.u64(a.index() as u64);
        out.u64(b.index() as u64);
    }

    write_config(&mut out, config);
    out.bytes
}

/// Serializes one task's sub-digest pre-image: the task's own timing and
/// attributes plus the *shape* of its relations, with every partner
/// referenced **by name** (never by index). Name-based references make
/// the bytes invariant under task reordering in the source document, and
/// excluding partner timing means a timing edit on task `x` changes
/// exactly `x`'s sub-digest — the property the structural spec diff in
/// [`Project::changed_tasks`](crate::Project::changed_tasks) relies on.
///
/// Message parameters (`grant_bus`, `communication`) are timing that
/// constrains *both* endpoints, so they appear in both endpoints'
/// sub-digests.
pub(crate) fn task_bytes(spec: &EzSpec, id: TaskId) -> Vec<u8> {
    let task = spec.task(id);
    let mut out = Canon::default();
    out.bytes.extend_from_slice(TASK_VERSION);

    out.tag(tag::TASK);
    out.str(task.name());
    let timing = task.timing();
    out.u64(timing.phase);
    out.u64(timing.release);
    out.u64(timing.computation);
    out.u64(timing.deadline);
    out.u64(timing.period);
    out.u64(match task.method() {
        ezrt_spec::SchedulingMethod::NonPreemptive => 0,
        ezrt_spec::SchedulingMethod::Preemptive => 1,
    });
    out.str(spec.processor(task.processor()).name());
    out.u64(task.energy());
    match task.code() {
        Some(code) => {
            out.flag(true);
            out.str(code.content());
        }
        None => out.flag(false),
    }

    out.tag(tag::PRECEDES);
    out.sorted_names(spec.predecessors(id).map(|p| spec.task(p).name()));
    out.sorted_names(spec.successors(id).map(|s| spec.task(s).name()));
    out.tag(tag::EXCLUDES);
    out.sorted_names(spec.exclusion_partners(id).map(|p| spec.task(p).name()));

    out.tag(tag::MESSAGE);
    let mut incident: Vec<_> = spec
        .messages()
        .filter(|&(_, m)| m.sender() == id || m.receiver() == id)
        .map(|(_, m)| m)
        .collect();
    incident.sort_by_key(|m| m.name());
    out.u64(incident.len() as u64);
    for message in incident {
        out.str(message.name());
        out.str(message.bus());
        out.flag(message.sender() == id);
        let partner = if message.sender() == id {
            message.receiver()
        } else {
            message.sender()
        };
        out.str(spec.task(partner).name());
        out.u64(message.grant_bus());
        out.u64(message.communication());
    }

    out.bytes
}

/// Serializes the *structure* of `spec` + `config`: the task set, the
/// relation shape and the result-relevant scheduler knobs, with all
/// timing values elided and every entity sorted by name. Two specs that
/// differ only in task timing share structure bytes — the property the
/// server's nearest-ancestor index keys on. Per-task instance counts
/// `N(t) = hyperperiod / period` **are** included: a period edit reshapes
/// the translated net, so warm-starting across it would be pointless.
///
/// The spec *name* is deliberately excluded — a renamed copy of a model
/// is the same search problem.
pub(crate) fn structure_bytes(spec: &EzSpec, config: &SchedulerConfig) -> Vec<u8> {
    let mut out = Canon::default();
    out.bytes.extend_from_slice(STRUCTURE_VERSION);

    out.tag(tag::SPEC);
    out.flag(spec.dispatcher_overhead());
    out.sorted_names(spec.processors().map(|(_, p)| p.name()));

    let mut tasks: Vec<_> = spec.tasks().collect();
    tasks.sort_by_key(|&(_, task)| task.name());
    out.u64(tasks.len() as u64);
    for (id, task) in tasks {
        out.tag(tag::TASK);
        out.str(task.name());
        out.u64(match task.method() {
            ezrt_spec::SchedulingMethod::NonPreemptive => 0,
            ezrt_spec::SchedulingMethod::Preemptive => 1,
        });
        out.str(spec.processor(task.processor()).name());
        out.u64(spec.instances_of(id));
    }

    out.tag(tag::PRECEDES);
    out.sorted_name_pairs(
        spec.precedences()
            .iter()
            .map(|&(a, b)| (spec.task(a).name(), spec.task(b).name())),
    );
    out.tag(tag::EXCLUDES);
    // Exclusion is symmetric: normalize each pair before sorting.
    out.sorted_name_pairs(spec.exclusions().iter().map(|&(a, b)| {
        let (a, b) = (spec.task(a).name(), spec.task(b).name());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }));

    out.tag(tag::MESSAGE);
    let mut messages: Vec<_> = spec.messages().map(|(_, m)| m).collect();
    messages.sort_by_key(|m| m.name());
    out.u64(messages.len() as u64);
    for message in messages {
        out.str(message.name());
        out.str(message.bus());
        out.str(spec.task(message.sender()).name());
        out.str(spec.task(message.receiver()).name());
    }

    write_config(&mut out, config);
    out.bytes
}

/// The result-relevant scheduler knobs, shared verbatim between the full
/// canonical stream and the structure stream.
fn write_config(out: &mut Canon, config: &SchedulerConfig) {
    out.tag(tag::CONFIG);
    out.u64(match config.ordering {
        BranchOrdering::Edf => 0,
        BranchOrdering::Fifo => 1,
    });
    out.u64(match config.delay_mode {
        DelayMode::Earliest => 0,
        DelayMode::Corners => 1,
        DelayMode::Full => 2,
    });
    // One byte in the slot the old `partial_order_reduction` flag used:
    // `Off` = 0 and `Classic` = 1 reproduce the old false/true bytes, so
    // pre-stubborn digests stay valid for the levels that existed then.
    out.bytes.push(match config.por {
        PorLevel::Off => 0,
        PorLevel::Classic => 1,
        PorLevel::Stubborn => 2,
    });
    out.u64(config.max_states as u64);
    out.u64(config.max_time.as_secs());
    out.u64(u64::from(config.max_time.subsec_nanos()));
    // config.parallelism intentionally not serialized — see module docs.
}

/// The little writer: tagged sections, length-prefixed strings,
/// fixed-width little-endian integers.
#[derive(Default)]
struct Canon {
    bytes: Vec<u8>,
}

impl Canon {
    fn tag(&mut self, tag: u8) {
        self.bytes.push(tag);
    }

    fn u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    fn flag(&mut self, value: bool) {
        self.bytes.push(u8::from(value));
    }

    fn str(&mut self, text: &str) {
        self.u64(text.len() as u64);
        self.bytes.extend_from_slice(text.as_bytes());
    }

    /// A count-prefixed, lexicographically sorted name list — the
    /// order-erasing building block of the reorder-invariant streams.
    fn sorted_names<'a>(&mut self, names: impl Iterator<Item = &'a str>) {
        let mut names: Vec<&str> = names.collect();
        names.sort_unstable();
        self.u64(names.len() as u64);
        for name in names {
            self.str(name);
        }
    }

    /// A count-prefixed, sorted list of name pairs.
    fn sorted_name_pairs<'a>(&mut self, pairs: impl Iterator<Item = (&'a str, &'a str)>) {
        let mut pairs: Vec<(&str, &str)> = pairs.collect();
        pairs.sort_unstable();
        self.u64(pairs.len() as u64);
        for (a, b) in pairs {
            self.str(a);
            self.str(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezrt_scheduler::Parallelism;
    use ezrt_spec::corpus::{mine_pump, small_control};
    use ezrt_spec::SpecBuilder;

    #[test]
    fn identical_inputs_give_identical_bytes() {
        let config = SchedulerConfig::default();
        assert_eq!(
            canonical_bytes(&small_control(), &config),
            canonical_bytes(&small_control(), &config)
        );
    }

    #[test]
    fn different_specs_give_different_bytes() {
        let config = SchedulerConfig::default();
        assert_ne!(
            canonical_bytes(&small_control(), &config),
            canonical_bytes(&mine_pump(), &config)
        );
    }

    #[test]
    fn every_result_relevant_config_knob_is_covered() {
        let spec = small_control();
        let base = canonical_bytes(&spec, &SchedulerConfig::default());
        let variants = [
            SchedulerConfig {
                ordering: BranchOrdering::Fifo,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                delay_mode: DelayMode::Corners,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                por: PorLevel::Off,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                por: PorLevel::Classic,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                max_states: 7,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                max_time: std::time::Duration::from_secs(1),
                ..SchedulerConfig::default()
            },
        ];
        for variant in variants {
            assert_ne!(base, canonical_bytes(&spec, &variant), "{variant:?}");
        }
    }

    #[test]
    fn parallelism_is_excluded() {
        let spec = small_control();
        let parallel = SchedulerConfig {
            parallelism: Parallelism::new(8),
            ..SchedulerConfig::default()
        };
        assert_eq!(
            canonical_bytes(&spec, &SchedulerConfig::default()),
            canonical_bytes(&spec, &parallel)
        );
    }

    #[test]
    fn task_rename_changes_the_bytes() {
        let config = SchedulerConfig::default();
        let build = |name: &str| {
            SpecBuilder::new("two")
                .task(name, |t| t.computation(1).deadline(4).period(10))
                .build()
                .unwrap()
        };
        assert_ne!(
            canonical_bytes(&build("a"), &config),
            canonical_bytes(&build("b"), &config)
        );
    }
}
