//! Canonical byte serialization of a specification plus its scheduler
//! configuration — the stable pre-image of `ezrt-server`'s spec digests.
//!
//! Two XML documents that parse to the same [`EzSpec`] (whitespace,
//! attribute order, escaping choices) produce the same byte stream, so
//! they map to the same cache key. The stream covers everything that
//! can change a synthesis *result*: every metamodel field of the spec
//! and the result-relevant scheduler knobs (branch ordering, delay
//! mode, partial-order reduction, state/time budgets). It deliberately
//! excludes [`Parallelism`](ezrt_scheduler::Parallelism): worker count
//! only changes how fast a miss is computed, never which key it
//! belongs to, so cached results are shared across `--jobs` values.
//!
//! The encoding is self-delimiting (length-prefixed strings, tagged
//! sections, fixed-width little-endian integers), so no two distinct
//! specifications can collide byte-wise by concatenation tricks. The
//! leading version tag makes any future format change alter every
//! digest deliberately rather than silently.

use ezrt_scheduler::{BranchOrdering, SchedulerConfig};
use ezrt_spec::EzSpec;
use ezrt_tpn::DelayMode;

/// Format version tag; bump when the encoding changes.
const VERSION: &[u8] = b"ezrt-canon-v1";

/// Section tags, one per metamodel region, so a decoder (or a human
/// with a hex dump) can tell where each part begins.
mod tag {
    pub const SPEC: u8 = 0x01;
    pub const TASK: u8 = 0x02;
    pub const PROCESSOR: u8 = 0x03;
    pub const MESSAGE: u8 = 0x04;
    pub const PRECEDES: u8 = 0x05;
    pub const EXCLUDES: u8 = 0x06;
    pub const CONFIG: u8 = 0x07;
}

/// Serializes `spec` + `config` into the canonical byte stream.
pub(crate) fn canonical_bytes(spec: &EzSpec, config: &SchedulerConfig) -> Vec<u8> {
    let mut out = Canon::default();
    out.bytes.extend_from_slice(VERSION);

    out.tag(tag::SPEC);
    out.str(spec.name());
    out.flag(spec.dispatcher_overhead());
    out.u64(spec.task_count() as u64);
    out.u64(spec.processors().count() as u64);
    out.u64(spec.messages().count() as u64);

    for (_, processor) in spec.processors() {
        out.tag(tag::PROCESSOR);
        out.str(processor.name());
    }
    for (_, task) in spec.tasks() {
        out.tag(tag::TASK);
        out.str(task.name());
        let timing = task.timing();
        out.u64(timing.phase);
        out.u64(timing.release);
        out.u64(timing.computation);
        out.u64(timing.deadline);
        out.u64(timing.period);
        out.u64(match task.method() {
            ezrt_spec::SchedulingMethod::NonPreemptive => 0,
            ezrt_spec::SchedulingMethod::Preemptive => 1,
        });
        out.u64(task.processor().index() as u64);
        out.u64(task.energy());
        match task.code() {
            Some(code) => {
                out.flag(true);
                out.str(code.content());
            }
            None => out.flag(false),
        }
    }
    for (_, message) in spec.messages() {
        out.tag(tag::MESSAGE);
        out.str(message.name());
        out.str(message.bus());
        out.u64(message.sender().index() as u64);
        out.u64(message.receiver().index() as u64);
        out.u64(message.grant_bus());
        out.u64(message.communication());
    }
    out.tag(tag::PRECEDES);
    out.u64(spec.precedences().len() as u64);
    for &(predecessor, successor) in spec.precedences() {
        out.u64(predecessor.index() as u64);
        out.u64(successor.index() as u64);
    }
    out.tag(tag::EXCLUDES);
    out.u64(spec.exclusions().len() as u64);
    for &(a, b) in spec.exclusions() {
        out.u64(a.index() as u64);
        out.u64(b.index() as u64);
    }

    out.tag(tag::CONFIG);
    out.u64(match config.ordering {
        BranchOrdering::Edf => 0,
        BranchOrdering::Fifo => 1,
    });
    out.u64(match config.delay_mode {
        DelayMode::Earliest => 0,
        DelayMode::Corners => 1,
        DelayMode::Full => 2,
    });
    out.flag(config.partial_order_reduction);
    out.u64(config.max_states as u64);
    out.u64(config.max_time.as_secs());
    out.u64(u64::from(config.max_time.subsec_nanos()));
    // config.parallelism intentionally not serialized — see module docs.

    out.bytes
}

/// The little writer: tagged sections, length-prefixed strings,
/// fixed-width little-endian integers.
#[derive(Default)]
struct Canon {
    bytes: Vec<u8>,
}

impl Canon {
    fn tag(&mut self, tag: u8) {
        self.bytes.push(tag);
    }

    fn u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    fn flag(&mut self, value: bool) {
        self.bytes.push(u8::from(value));
    }

    fn str(&mut self, text: &str) {
        self.u64(text.len() as u64);
        self.bytes.extend_from_slice(text.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezrt_scheduler::Parallelism;
    use ezrt_spec::corpus::{mine_pump, small_control};
    use ezrt_spec::SpecBuilder;

    #[test]
    fn identical_inputs_give_identical_bytes() {
        let config = SchedulerConfig::default();
        assert_eq!(
            canonical_bytes(&small_control(), &config),
            canonical_bytes(&small_control(), &config)
        );
    }

    #[test]
    fn different_specs_give_different_bytes() {
        let config = SchedulerConfig::default();
        assert_ne!(
            canonical_bytes(&small_control(), &config),
            canonical_bytes(&mine_pump(), &config)
        );
    }

    #[test]
    fn every_result_relevant_config_knob_is_covered() {
        let spec = small_control();
        let base = canonical_bytes(&spec, &SchedulerConfig::default());
        let variants = [
            SchedulerConfig {
                ordering: BranchOrdering::Fifo,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                delay_mode: DelayMode::Corners,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                partial_order_reduction: false,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                max_states: 7,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                max_time: std::time::Duration::from_secs(1),
                ..SchedulerConfig::default()
            },
        ];
        for variant in variants {
            assert_ne!(base, canonical_bytes(&spec, &variant), "{variant:?}");
        }
    }

    #[test]
    fn parallelism_is_excluded() {
        let spec = small_control();
        let parallel = SchedulerConfig {
            parallelism: Parallelism::new(8),
            ..SchedulerConfig::default()
        };
        assert_eq!(
            canonical_bytes(&spec, &SchedulerConfig::default()),
            canonical_bytes(&spec, &parallel)
        );
    }

    #[test]
    fn task_rename_changes_the_bytes() {
        let config = SchedulerConfig::default();
        let build = |name: &str| {
            SpecBuilder::new("two")
                .task(name, |t| t.computation(1).deadline(4).period(10))
                .build()
                .unwrap()
        };
        assert_ne!(
            canonical_bytes(&build("a"), &config),
            canonical_bytes(&build("b"), &config)
        );
    }
}
