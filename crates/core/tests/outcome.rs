//! Integration tests for the `Outcome` artefact surface.

use ezrt_core::Project;
use ezrt_spec::corpus::{figure3_spec, figure8_spec, small_control};
use ezrt_tpn::reachability::{explore, DelayMode, ExplorationLimits};

#[test]
fn execute_defaults_to_one_period() {
    let outcome = Project::new(small_control()).synthesize().unwrap();
    assert_eq!(outcome.execute(), outcome.execute_for(1));
}

#[test]
fn outcome_spec_accessor_matches_project() {
    let spec = figure3_spec();
    let outcome = Project::new(spec.clone()).synthesize().unwrap();
    assert_eq!(outcome.spec(), &spec);
}

#[test]
fn schedule_and_timeline_agree_on_workload() {
    let outcome = Project::new(figure8_spec()).synthesize().unwrap();
    // Sum of compute firings' delays == sum of slice durations == total
    // demand. For preemptive tasks each compute firing advances 1 unit.
    let busy_from_slices: u64 = outcome
        .timeline
        .slices()
        .iter()
        .map(|s| s.end - s.start)
        .sum();
    let demand: u64 = outcome
        .spec()
        .tasks()
        .map(|(id, t)| outcome.spec().instances_of(id) * t.timing().computation)
        .sum();
    assert_eq!(busy_from_slices, demand);
}

#[test]
fn bounded_reachability_agrees_with_the_search_on_figure3() {
    // The generic breadth-first explorer (analysis tool) and the
    // goal-directed DFS walk the same TLTS: under the earliest-firing
    // policy the whole reachable space of the Fig. 3 net is tiny and
    // contains the final marking the search reports.
    let project = Project::new(figure3_spec());
    let tasknet = project.translate();
    let report = explore(
        tasknet.net(),
        DelayMode::Earliest,
        ExplorationLimits {
            max_states: 10_000,
            max_depth: 10_000,
        },
    );
    assert!(!report.truncated);
    // Eager exploration of a two-task precedence net: fork, two arrival
    // chains, serialized executions — a few dozen states at most.
    assert!(report.states_visited < 100, "got {}", report.states_visited);
    // The deadlocks include the success state MF (nothing enabled there).
    assert!(report.deadlocks >= 1);

    let outcome = project.synthesize().unwrap();
    assert!(outcome.stats.states_visited <= report.states_visited + 1);
}

#[test]
fn gantt_respects_window_bounds() {
    let outcome = Project::new(small_control()).synthesize().unwrap();
    let narrow = outcome.gantt(0, 5);
    let wide = outcome.gantt(0, 20);
    // One row per task either way; narrow rows are shorter.
    assert_eq!(narrow.lines().count(), wide.lines().count());
    assert!(narrow.lines().next().unwrap().len() < wide.lines().next().unwrap().len());
}

#[test]
fn pnml_and_dot_share_the_same_net() {
    let outcome = Project::new(small_control()).synthesize().unwrap();
    let pnml = outcome.to_pnml();
    let dot = outcome.to_dot();
    // Every transition name that appears in DOT also appears in PNML.
    for (_, transition) in outcome.tasknet.net().transitions() {
        assert!(dot.contains(transition.name()));
        assert!(pnml.contains(transition.name()));
    }
}
