//! Property tests for the specification metamodel.

use ezrt_spec::generate::{synthetic_spec, uunifast, WorkloadConfig};
use ezrt_spec::hyperperiod::{gcd, lcm, lcm_all};
use ezrt_spec::{SpecBuilder, TimingConstraints};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn gcd_divides_both(a in 1u64..10_000, b in 1u64..10_000) {
        let g = gcd(a, b);
        prop_assert!(g > 0);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
    }

    #[test]
    fn lcm_is_common_multiple(a in 1u64..1_000, b in 1u64..1_000) {
        let l = lcm(a, b);
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        prop_assert!(l <= a * b);
    }

    #[test]
    fn lcm_all_divisible_by_each(periods in prop::collection::vec(1u64..500, 1..6)) {
        let l = lcm_all(periods.iter().copied());
        for p in periods {
            prop_assert_eq!(l % p, 0);
        }
    }

    #[test]
    fn uunifast_total_and_bounds(n in 1usize..30, total in 0.05f64..1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = uunifast(n, total, &mut rng);
        prop_assert_eq!(u.len(), n);
        let sum: f64 = u.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
        prop_assert!(u.iter().all(|&x| (-1e-12..=total + 1e-12).contains(&x)));
    }

    /// Any spec produced by the generator validates, and its instance
    /// accounting is internally consistent.
    #[test]
    fn generated_specs_are_consistent(
        tasks in 1usize..10,
        util in 0.1f64..0.95,
        seed in any::<u64>(),
        prec in 0.0f64..0.5,
        excl in 0.0f64..0.5,
        constrained in any::<bool>(),
    ) {
        let config = WorkloadConfig {
            tasks,
            total_utilization: util,
            precedence_probability: prec,
            exclusion_probability: excl,
            constrained_deadlines: constrained,
            ..WorkloadConfig::default()
        };
        let spec = synthetic_spec(&config, seed);
        prop_assert!(spec.validate().is_ok());

        let hp = spec.hyperperiod();
        let mut total = 0;
        for (id, task) in spec.tasks() {
            let timing = task.timing();
            prop_assert!(timing.computation >= 1);
            prop_assert!(timing.computation <= timing.deadline);
            prop_assert!(timing.deadline <= timing.period);
            prop_assert_eq!(hp % timing.period, 0);
            total += spec.instances_of(id);
        }
        prop_assert_eq!(total, spec.total_instances());
    }

    /// Validation rejects any timing triple violating c <= d <= p.
    #[test]
    fn validation_enforces_timing_chain(c in 0u64..50, d in 0u64..50, p in 1u64..50) {
        let result = SpecBuilder::new("chain")
            .task("t", move |t| t.computation(c).deadline(d).period(p))
            .build();
        let valid = c >= 1 && c <= d && d <= p;
        prop_assert_eq!(result.is_ok(), valid);
    }

    /// latest_start is consistent with the timing chain.
    #[test]
    fn latest_start_bounds(c in 1u64..100, slack in 0u64..100, pslack in 0u64..100) {
        let t = TimingConstraints::cdp(c, c + slack, c + slack + pslack);
        prop_assert_eq!(t.latest_start(), slack);
        prop_assert!(t.latest_start() + c <= t.deadline);
    }
}
