//! Fluent construction and validation of specifications.

use crate::error::ValidateSpecError;
use crate::model::{
    EzSpec, Message, Processor, ProcessorId, SchedulingMethod, SourceCode, Task, TaskId,
    TimingConstraints,
};
use crate::Time;

/// Name of the processor created implicitly when a specification never
/// declares one — the paper's mono-processor default.
pub const DEFAULT_PROCESSOR: &str = "cpu0";

/// Fluent builder for [`EzSpec`], playing the role of the EMF tree editor
/// in the original tool: users declare tasks, relations, processors and
/// messages, and [`SpecBuilder::build`] validates the result.
///
/// # Examples
///
/// ```
/// use ezrt_spec::SpecBuilder;
///
/// # fn main() -> Result<(), ezrt_spec::ValidateSpecError> {
/// let spec = SpecBuilder::new("mine-fragment")
///     .task("pmc", |t| t.computation(10).deadline(20).period(80))
///     .task("wfc", |t| t.computation(15).deadline(500).period(500))
///     .excludes("pmc", "wfc")
///     .build()?;
/// assert_eq!(spec.task_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    name: String,
    dispatcher_overhead: bool,
    tasks: Vec<Task>,
    processors: Vec<Processor>,
    messages: Vec<PendingMessage>,
    precedences: Vec<(String, String)>,
    exclusions: Vec<(String, String)>,
    /// Tasks declared before their processor; resolved at build time.
    pending_processors: Vec<(usize, String)>,
}

#[derive(Debug, Clone)]
struct PendingMessage {
    name: String,
    bus: String,
    sender: String,
    receiver: String,
    grant_bus: Time,
    communication: Time,
}

/// Per-task configuration closure argument of [`SpecBuilder::task`].
///
/// Defaults: `phase = 0`, `release = 0`, non-preemptive scheduling, the
/// implicit [`DEFAULT_PROCESSOR`], zero energy, no code. `computation`,
/// `deadline` and `period` have no defaults — forgetting them fails
/// validation (`c ≥ 1` and `c ≤ d ≤ p`).
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    timing: TimingConstraints,
    method: SchedulingMethod,
    processor: Option<String>,
    energy: u64,
    code: Option<SourceCode>,
}

impl Default for TaskBuilder {
    fn default() -> Self {
        TaskBuilder {
            timing: TimingConstraints {
                phase: 0,
                release: 0,
                computation: 0,
                deadline: 0,
                period: 0,
            },
            method: SchedulingMethod::NonPreemptive,
            processor: None,
            energy: 0,
            code: None,
        }
    }
}

impl TaskBuilder {
    /// Sets the phase offset `ph_i`.
    pub fn phase(mut self, phase: Time) -> Self {
        self.timing.phase = phase;
        self
    }

    /// Sets the release time `r_i`.
    pub fn release(mut self, release: Time) -> Self {
        self.timing.release = release;
        self
    }

    /// Sets the worst-case execution time `c_i`.
    pub fn computation(mut self, wcet: Time) -> Self {
        self.timing.computation = wcet;
        self
    }

    /// Sets the relative deadline `d_i`.
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.timing.deadline = deadline;
        self
    }

    /// Sets the period `p_i`.
    pub fn period(mut self, period: Time) -> Self {
        self.timing.period = period;
        self
    }

    /// Replaces all timing constraints at once.
    pub fn timing(mut self, timing: TimingConstraints) -> Self {
        self.timing = timing;
        self
    }

    /// Marks the task preemptive (Fig. 2(b) block).
    pub fn preemptive(mut self) -> Self {
        self.method = SchedulingMethod::Preemptive;
        self
    }

    /// Sets the scheduling method explicitly.
    pub fn method(mut self, method: SchedulingMethod) -> Self {
        self.method = method;
        self
    }

    /// Binds the task to a named processor (declared via
    /// [`SpecBuilder::processor`] or created on demand).
    pub fn on_processor(mut self, name: impl Into<String>) -> Self {
        self.processor = Some(name.into());
        self
    }

    /// Sets the per-activation energy budget.
    pub fn energy(mut self, energy: u64) -> Self {
        self.energy = energy;
        self
    }

    /// Attaches behavioural C source code.
    pub fn code(mut self, source: impl Into<String>) -> Self {
        self.code = Some(SourceCode::new(source));
        self
    }
}

impl SpecBuilder {
    /// Starts a specification called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SpecBuilder {
            name: name.into(),
            dispatcher_overhead: false,
            tasks: Vec::new(),
            processors: Vec::new(),
            messages: Vec::new(),
            precedences: Vec::new(),
            exclusions: Vec::new(),
            pending_processors: Vec::new(),
        }
    }

    /// Enables the metamodel's `dispOveh` flag: generated code and the
    /// simulator will account for dispatcher overhead.
    pub fn dispatcher_overhead(mut self, enabled: bool) -> Self {
        self.dispatcher_overhead = enabled;
        self
    }

    /// Declares a processor.
    pub fn processor(mut self, name: impl Into<String>) -> Self {
        self.processors.push(Processor { name: name.into() });
        self
    }

    /// Declares a task, configured through the closure.
    pub fn task(
        mut self,
        name: impl Into<String>,
        configure: impl FnOnce(TaskBuilder) -> TaskBuilder,
    ) -> Self {
        let tb = configure(TaskBuilder::default());
        let index = self.tasks.len();
        if let Some(proc_name) = tb.processor {
            self.pending_processors.push((index, proc_name));
        }
        self.tasks.push(Task {
            name: name.into(),
            timing: tb.timing,
            method: tb.method,
            processor: ProcessorId::from_index(0), // resolved at build
            energy: tb.energy,
            code: tb.code,
        });
        self
    }

    /// Declares `predecessor PRECEDES successor`.
    pub fn precedes(
        mut self,
        predecessor: impl Into<String>,
        successor: impl Into<String>,
    ) -> Self {
        self.precedences
            .push((predecessor.into(), successor.into()));
        self
    }

    /// Declares `a EXCLUDES b` (symmetric, per the paper).
    pub fn excludes(mut self, a: impl Into<String>, b: impl Into<String>) -> Self {
        self.exclusions.push((a.into(), b.into()));
        self
    }

    /// Declares a message from `sender` to `receiver` on `bus` with the
    /// given arbitration (`grant_bus`) and transfer (`communication`)
    /// times.
    pub fn message(
        mut self,
        name: impl Into<String>,
        sender: impl Into<String>,
        receiver: impl Into<String>,
        bus: impl Into<String>,
        grant_bus: Time,
        communication: Time,
    ) -> Self {
        self.messages.push(PendingMessage {
            name: name.into(),
            bus: bus.into(),
            sender: sender.into(),
            receiver: receiver.into(),
            grant_bus,
            communication,
        });
        self
    }

    /// Resolves names, validates and freezes the specification.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateSpecError`] encountered; see
    /// [`EzSpec::validate`] for the full rule list.
    pub fn build(mut self) -> Result<EzSpec, ValidateSpecError> {
        // Ensure at least the default processor exists.
        if self.processors.is_empty() {
            self.processors.push(Processor {
                name: DEFAULT_PROCESSOR.to_owned(),
            });
        }
        // Auto-create named processors referenced by tasks.
        for (_, proc_name) in &self.pending_processors {
            if !self.processors.iter().any(|p| &p.name == proc_name) {
                self.processors.push(Processor {
                    name: proc_name.clone(),
                });
            }
        }
        // Resolve task → processor bindings.
        for (task_index, proc_name) in &self.pending_processors {
            let pid = self
                .processors
                .iter()
                .position(|p| &p.name == proc_name)
                .map(ProcessorId::from_index)
                .ok_or_else(|| ValidateSpecError::UnknownProcessor(proc_name.clone()))?;
            self.tasks[*task_index].processor = pid;
        }

        let task_id = |tasks: &[Task], name: &str| -> Result<TaskId, ValidateSpecError> {
            tasks
                .iter()
                .position(|t| t.name == name)
                .map(TaskId::from_index)
                .ok_or_else(|| ValidateSpecError::UnknownTask(name.to_owned()))
        };

        // Deduplicated like exclusions below: a repeated PRECEDES edge
        // adds no constraint, but a duplicate pair would collide in the
        // translated net's per-edge place names.
        let mut precedences = Vec::with_capacity(self.precedences.len());
        for (from, to) in &self.precedences {
            let pair = (task_id(&self.tasks, from)?, task_id(&self.tasks, to)?);
            if !precedences.contains(&pair) {
                precedences.push(pair);
            }
        }
        let mut exclusions = Vec::with_capacity(self.exclusions.len());
        for (a, b) in &self.exclusions {
            let a = task_id(&self.tasks, a)?;
            let b = task_id(&self.tasks, b)?;
            let pair = (a.min(b), a.max(b));
            if !exclusions.contains(&pair) {
                exclusions.push(pair);
            }
        }
        let mut messages = Vec::with_capacity(self.messages.len());
        for m in &self.messages {
            messages.push(Message {
                name: m.name.clone(),
                bus: m.bus.clone(),
                sender: task_id(&self.tasks, &m.sender)?,
                receiver: task_id(&self.tasks, &m.receiver)?,
                grant_bus: m.grant_bus,
                communication: m.communication,
            });
        }

        let spec = EzSpec {
            name: self.name,
            dispatcher_overhead: self.dispatcher_overhead,
            tasks: self.tasks,
            processors: self.processors,
            messages,
            precedences,
            exclusions,
        };
        validate(&spec)?;
        Ok(spec)
    }
}

/// The full validation suite shared by the builder and
/// [`EzSpec::validate`].
pub(crate) fn validate(spec: &EzSpec) -> Result<(), ValidateSpecError> {
    if spec.tasks.is_empty() {
        return Err(ValidateSpecError::NoTasks);
    }

    let mut names = std::collections::HashSet::new();
    for t in &spec.tasks {
        if !names.insert(t.name.as_str()) {
            return Err(ValidateSpecError::DuplicateTaskName(t.name.clone()));
        }
    }
    let mut names = std::collections::HashSet::new();
    for p in &spec.processors {
        if !names.insert(p.name.as_str()) {
            return Err(ValidateSpecError::DuplicateProcessorName(p.name.clone()));
        }
    }
    let mut names = std::collections::HashSet::new();
    for m in &spec.messages {
        if !names.insert(m.name.as_str()) {
            return Err(ValidateSpecError::DuplicateMessageName(m.name.clone()));
        }
    }

    for t in &spec.tasks {
        let timing = t.timing;
        let fail = |detail: String| ValidateSpecError::BadTiming {
            task: t.name.clone(),
            detail,
        };
        if timing.period == 0 {
            return Err(fail("period must be at least 1".into()));
        }
        if timing.computation == 0 {
            return Err(fail("computation time must be at least 1".into()));
        }
        if timing.computation > timing.deadline {
            return Err(fail(format!(
                "computation {} exceeds deadline {}",
                timing.computation, timing.deadline
            )));
        }
        if timing.deadline > timing.period {
            return Err(fail(format!(
                "deadline {} exceeds period {}",
                timing.deadline, timing.period
            )));
        }
        if timing.release + timing.computation > timing.deadline {
            return Err(fail(format!(
                "release {} + computation {} exceeds deadline {}",
                timing.release, timing.computation, timing.deadline
            )));
        }
        if t.processor.index() >= spec.processors.len() {
            return Err(ValidateSpecError::UnknownProcessor(format!(
                "{}",
                t.processor
            )));
        }
    }

    // Relations: no self-relations; precedence & messages need equal
    // periods so instance k of the predecessor pairs with instance k of
    // the successor inside the schedule period.
    let dependency_pairs: Vec<(TaskId, TaskId)> = spec
        .precedences
        .iter()
        .copied()
        .chain(spec.messages.iter().map(|m| (m.sender, m.receiver)))
        .collect();
    for &(from, to) in &dependency_pairs {
        if from == to {
            return Err(ValidateSpecError::SelfRelation(
                spec.task(from).name().to_owned(),
            ));
        }
        if spec.task(from).timing().period != spec.task(to).timing().period {
            return Err(ValidateSpecError::PeriodMismatch {
                from: spec.task(from).name().to_owned(),
                to: spec.task(to).name().to_owned(),
            });
        }
    }
    for &(a, b) in &spec.exclusions {
        if a == b {
            return Err(ValidateSpecError::SelfRelation(
                spec.task(a).name().to_owned(),
            ));
        }
    }

    // Cycle detection over precedence ∪ message edges (DFS, three colours).
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    fn visit(node: TaskId, colours: &mut [Colour], edges: &[(TaskId, TaskId)]) -> Option<TaskId> {
        colours[node.index()] = Colour::Grey;
        for &(from, to) in edges {
            if from == node {
                match colours[to.index()] {
                    Colour::Grey => return Some(to),
                    Colour::White => {
                        if let Some(witness) = visit(to, colours, edges) {
                            return Some(witness);
                        }
                    }
                    Colour::Black => {}
                }
            }
        }
        colours[node.index()] = Colour::Black;
        None
    }
    let mut colours = vec![Colour::White; spec.tasks.len()];
    for i in 0..spec.tasks.len() {
        if colours[i] == Colour::White {
            if let Some(witness) = visit(TaskId::from_index(i), &mut colours, &dependency_pairs) {
                return Err(ValidateSpecError::PrecedenceCycle(
                    spec.task(witness).name().to_owned(),
                ));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SpecBuilder {
        SpecBuilder::new("t")
            .task("a", |t| t.computation(1).deadline(5).period(10))
            .task("b", |t| t.computation(2).deadline(8).period(10))
    }

    #[test]
    fn builds_with_default_processor() {
        let spec = base().build().unwrap();
        assert_eq!(spec.processors().count(), 1);
        assert_eq!(spec.processor_id(DEFAULT_PROCESSOR).unwrap().index(), 0);
    }

    #[test]
    fn named_processors_are_auto_created_and_bound() {
        let spec = SpecBuilder::new("mp")
            .task("a", |t| {
                t.computation(1).deadline(5).period(10).on_processor("arm9")
            })
            .task("b", |t| t.computation(1).deadline(5).period(10))
            .build()
            .unwrap();
        let arm = spec.processor_id("arm9").unwrap();
        assert_eq!(spec.task_by_name("a").unwrap().processor(), arm);
        assert_ne!(spec.task_by_name("b").unwrap().processor(), arm);
    }

    #[test]
    fn rejects_zero_period_with_a_typed_error() {
        // A task that never sets its period must fail validation by
        // name, not surface later as a scheduler panic.
        let err = SpecBuilder::new("p")
            .task("a", |t| t.computation(1).deadline(1))
            .build()
            .unwrap_err();
        match err {
            ValidateSpecError::BadTiming { task, detail } => {
                assert_eq!(task, "a");
                assert!(detail.contains("period"), "{detail}");
            }
            other => panic!("expected BadTiming, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_computation() {
        let err = SpecBuilder::new("z")
            .task("a", |t| t.deadline(5).period(10))
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateSpecError::BadTiming { .. }));
    }

    #[test]
    fn rejects_c_greater_than_d_and_d_greater_than_p() {
        assert!(matches!(
            SpecBuilder::new("x")
                .task("a", |t| t.computation(6).deadline(5).period(10))
                .build(),
            Err(ValidateSpecError::BadTiming { .. })
        ));
        assert!(matches!(
            SpecBuilder::new("x")
                .task("a", |t| t.computation(1).deadline(15).period(10))
                .build(),
            Err(ValidateSpecError::BadTiming { .. })
        ));
    }

    #[test]
    fn rejects_release_window_too_small() {
        let err = SpecBuilder::new("r")
            .task("a", |t| t.release(5).computation(3).deadline(6).period(10))
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateSpecError::BadTiming { .. }));
    }

    #[test]
    fn rejects_duplicate_task_names() {
        let err = base()
            .task("a", |t| t.computation(1).deadline(5).period(10))
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateSpecError::DuplicateTaskName("a".into()));
    }

    #[test]
    fn rejects_unknown_relation_target() {
        let err = base().precedes("a", "ghost").build().unwrap_err();
        assert_eq!(err, ValidateSpecError::UnknownTask("ghost".into()));
    }

    #[test]
    fn rejects_self_relations() {
        assert!(matches!(
            base().precedes("a", "a").build(),
            Err(ValidateSpecError::SelfRelation(_))
        ));
        assert!(matches!(
            base().excludes("b", "b").build(),
            Err(ValidateSpecError::SelfRelation(_))
        ));
    }

    #[test]
    fn rejects_precedence_period_mismatch() {
        let err = SpecBuilder::new("pm")
            .task("fast", |t| t.computation(1).deadline(5).period(5))
            .task("slow", |t| t.computation(1).deadline(10).period(10))
            .precedes("fast", "slow")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateSpecError::PeriodMismatch { .. }));
    }

    #[test]
    fn rejects_precedence_cycles() {
        let err = SpecBuilder::new("cycle")
            .task("a", |t| t.computation(1).deadline(5).period(10))
            .task("b", |t| t.computation(1).deadline(5).period(10))
            .task("c", |t| t.computation(1).deadline(5).period(10))
            .precedes("a", "b")
            .precedes("b", "c")
            .precedes("c", "a")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateSpecError::PrecedenceCycle(_)));
    }

    #[test]
    fn message_cycles_are_also_rejected() {
        let err = SpecBuilder::new("mcycle")
            .task("a", |t| t.computation(1).deadline(5).period(10))
            .task("b", |t| t.computation(1).deadline(5).period(10))
            .precedes("a", "b")
            .message("m", "b", "a", "can0", 0, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateSpecError::PrecedenceCycle(_)));
    }

    #[test]
    fn precedences_are_deduplicated() {
        // A repeated edge adds no constraint — and a duplicate pair
        // would collide in the translated net's per-edge place names.
        let spec = base()
            .precedes("a", "b")
            .precedes("a", "b")
            .build()
            .unwrap();
        assert_eq!(spec.precedences().len(), 1);
    }

    #[test]
    fn exclusions_are_deduplicated_and_normalized() {
        let spec = base()
            .excludes("a", "b")
            .excludes("b", "a")
            .build()
            .unwrap();
        assert_eq!(spec.exclusions().len(), 1);
        let (lo, hi) = spec.exclusions()[0];
        assert!(lo < hi);
    }

    #[test]
    fn messages_resolve_task_ids() {
        let spec = SpecBuilder::new("msg")
            .task("tx", |t| t.computation(1).deadline(5).period(10))
            .task("rx", |t| t.computation(1).deadline(9).period(10))
            .message("frame", "tx", "rx", "can0", 1, 2)
            .build()
            .unwrap();
        let (_, m) = spec.messages().next().unwrap();
        assert_eq!(spec.task(m.sender()).name(), "tx");
        assert_eq!(spec.task(m.receiver()).name(), "rx");
        assert_eq!(m.grant_bus(), 1);
        assert_eq!(m.communication(), 2);
        assert_eq!(m.bus(), "can0");
    }

    #[test]
    fn task_builder_covers_all_fields() {
        let spec = SpecBuilder::new("full")
            .task("t", |t| {
                t.phase(3)
                    .release(1)
                    .computation(2)
                    .deadline(6)
                    .period(12)
                    .preemptive()
                    .energy(7)
                    .code("do_work();")
            })
            .build()
            .unwrap();
        let t = spec.task_by_name("t").unwrap();
        assert_eq!(t.timing().phase, 3);
        assert_eq!(t.timing().release, 1);
        assert_eq!(t.method(), SchedulingMethod::Preemptive);
        assert_eq!(t.energy(), 7);
        assert_eq!(t.code().unwrap().content(), "do_work();");
    }

    #[test]
    fn validate_is_idempotent_on_built_specs() {
        let spec = base().excludes("a", "b").build().unwrap();
        assert!(spec.validate().is_ok());
    }
}
