//! The ezRealtime specification metamodel.
//!
//! This crate is the Rust rendition of the paper's Fig. 5 metamodel —
//! the part of ezRealtime that the Eclipse EMF tree editor exposed to end
//! users. A specification ([`EzSpec`]) is composed of (paper §3.2):
//!
//! 1. a set of **periodic tasks** with timing constraints
//!    `(ph_i, r_i, c_i, d_i, p_i)` — phase, release, worst-case execution
//!    time, deadline and period, with `c_i ≤ d_i ≤ p_i`;
//! 2. **inter-task relations**: `PRECEDES` (the successor may only start
//!    after the predecessor finished) and `EXCLUDES` (mutual exclusion,
//!    stored symmetrically);
//! 3. a per-task **scheduling method** — preemptive or non-preemptive —
//!    and the behavioural **source code** in C;
//! 4. **processors** and inter-task **messages** over named buses
//!    (mono-processor is the paper's validated configuration; the metamodel
//!    nevertheless carries `1..*` processors and messages, which this
//!    reproduction honours).
//!
//! Specifications are constructed through [`SpecBuilder`], validated by
//! [`EzSpec::validate`] (invoked automatically by the builder) and consumed
//! by `ezrt-compose`, which translates them into time Petri nets.
//!
//! The crate also hosts:
//!
//! * [`hyperperiod`] — schedule-period (LCM) and task-instance arithmetic,
//!   reproducing the paper's "782 task instances" count for the mine pump;
//! * [`corpus`] — ready-made specifications for every case study and figure
//!   of the paper (Table 1 mine pump, Figs. 3, 4 and 8);
//! * [`generate`] — seeded synthetic workload generation (UUniFast) for the
//!   scalability benchmarks.
//!
//! # Examples
//!
//! ```
//! use ezrt_spec::{SpecBuilder, SchedulingMethod};
//!
//! # fn main() -> Result<(), ezrt_spec::ValidateSpecError> {
//! let spec = SpecBuilder::new("sampler")
//!     .task("sense", |t| t.computation(2).deadline(10).period(20))
//!     .task("log", |t| t.computation(3).deadline(20).period(20).preemptive())
//!     .precedes("sense", "log")
//!     .build()?;
//! assert_eq!(spec.task_count(), 2);
//! assert_eq!(spec.hyperperiod(), 20);
//! assert_eq!(spec.total_instances(), 2);
//! assert_eq!(spec.task_by_name("log").unwrap().method(), SchedulingMethod::Preemptive);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod corpus;
mod error;
pub mod generate;
pub mod hyperperiod;
mod model;
pub mod sweep;

pub use builder::{SpecBuilder, TaskBuilder, DEFAULT_PROCESSOR};
pub use error::ValidateSpecError;
pub use model::{
    EzSpec, Message, MessageId, Processor, ProcessorId, SchedulingMethod, SourceCode, Task, TaskId,
    TimingConstraints,
};

/// Discrete specification time (same unit convention as `ezrt_tpn::Time`).
pub type Time = u64;
