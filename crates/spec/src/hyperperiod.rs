//! Schedule-period (hyper-period) and task-instance arithmetic.
//!
//! Pre-runtime scheduling considers all task instances within the *schedule
//! period* `P_S`, the least common multiple of the task periods (paper
//! §3.3.1). For the mine pump case study the periods
//! `{80, 500, 1000, 500, 500, 2500, 6000, 500, 500, 500}` yield
//! `P_S = 30 000` and `Σ P_S / p_i = 782` task instances — the numbers
//! quoted in §5 of the paper.

use crate::Time;

/// Greatest common divisor (Euclid).
///
/// # Examples
///
/// ```
/// assert_eq!(ezrt_spec::hyperperiod::gcd(12, 18), 6);
/// assert_eq!(ezrt_spec::hyperperiod::gcd(7, 0), 7);
/// ```
pub fn gcd(a: Time, b: Time) -> Time {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Least common multiple.
///
/// # Panics
///
/// Panics on arithmetic overflow — hyper-periods beyond `u64` indicate a
/// mis-specified system rather than a workload this tool should accept.
///
/// # Examples
///
/// ```
/// assert_eq!(ezrt_spec::hyperperiod::lcm(80, 500), 2000);
/// ```
pub fn lcm(a: Time, b: Time) -> Time {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b))
        .checked_mul(b)
        .expect("hyperperiod overflow")
}

/// LCM over an iterator of periods; `0` for an empty iterator.
///
/// # Examples
///
/// ```
/// let mine_pump_periods = [80u64, 500, 1000, 500, 500, 2500, 6000, 500, 500, 500];
/// assert_eq!(ezrt_spec::hyperperiod::lcm_all(mine_pump_periods), 30_000);
/// ```
pub fn lcm_all(periods: impl IntoIterator<Item = Time>) -> Time {
    periods
        .into_iter()
        .fold(0, |acc, p| if acc == 0 { p } else { lcm(acc, p) })
}

/// Number of instances of a task with period `period` inside the schedule
/// period `hyperperiod` (`N(t_i) = P_S / p_i`).
///
/// # Panics
///
/// Panics if `period` is zero or does not divide `hyperperiod` — both
/// indicate the hyper-period was computed over a different task set.
pub fn instances(hyperperiod: Time, period: Time) -> u64 {
    assert!(period > 0, "task period must be positive");
    assert_eq!(
        hyperperiod % period,
        0,
        "hyperperiod {hyperperiod} is not a multiple of period {period}"
    );
    hyperperiod / period
}

/// The absolute arrival time of instance `k` (0-based) of a task with the
/// given `phase` and `period`: `ph + k·p`.
pub fn arrival_time(phase: Time, period: Time, instance: u64) -> Time {
    phase + period * instance
}

/// The absolute deadline of instance `k`: `ph + k·p + d`.
pub fn absolute_deadline(phase: Time, period: Time, deadline: Time, instance: u64) -> Time {
    arrival_time(phase, period, instance) + deadline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(48, 36), 12);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 9), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(80, 2500), 10_000);
    }

    #[test]
    fn mine_pump_hyperperiod_is_30000() {
        let periods = [80u64, 500, 1000, 500, 500, 2500, 6000, 500, 500, 500];
        assert_eq!(lcm_all(periods), 30_000);
    }

    #[test]
    fn mine_pump_total_instances_is_782() {
        let periods = [80u64, 500, 1000, 500, 500, 2500, 6000, 500, 500, 500];
        let hp = lcm_all(periods);
        let total: u64 = periods.iter().map(|&p| instances(hp, p)).sum();
        assert_eq!(total, 782, "the count quoted in §5 of the paper");
    }

    #[test]
    fn instance_arithmetic() {
        assert_eq!(instances(30_000, 80), 375);
        assert_eq!(instances(30_000, 6000), 5);
        assert_eq!(arrival_time(3, 10, 0), 3);
        assert_eq!(arrival_time(3, 10, 4), 43);
        assert_eq!(absolute_deadline(3, 10, 7, 4), 50);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn instances_rejects_non_divisor_period() {
        let _ = instances(100, 7);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn instances_rejects_zero_period() {
        let _ = instances(100, 0);
    }

    #[test]
    fn lcm_all_empty_is_zero() {
        assert_eq!(lcm_all(std::iter::empty()), 0);
    }
}
