//! Validation errors for ezRealtime specifications.

use std::error::Error;
use std::fmt;

/// A well-formedness violation detected while validating an
/// [`EzSpec`](crate::EzSpec).
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateSpecError {
    /// The specification contains no tasks.
    NoTasks,
    /// Two tasks share a name.
    DuplicateTaskName(String),
    /// Two processors share a name.
    DuplicateProcessorName(String),
    /// Two messages share a name.
    DuplicateMessageName(String),
    /// A task violates `1 ≤ c_i ≤ d_i ≤ p_i`.
    BadTiming {
        /// The offending task.
        task: String,
        /// Human-readable description of the violated inequality.
        detail: String,
    },
    /// A relation references a task name that does not exist.
    UnknownTask(String),
    /// A task references a processor that does not exist.
    UnknownProcessor(String),
    /// A task precedes or excludes itself.
    SelfRelation(String),
    /// A precedence or message pair has differing periods, so its instances
    /// cannot be matched one-to-one within the schedule period.
    PeriodMismatch {
        /// The predecessor / sender task.
        from: String,
        /// The successor / receiver task.
        to: String,
    },
    /// The precedence graph (including message-induced precedences) has a
    /// cycle through the named task.
    PrecedenceCycle(String),
}

impl fmt::Display for ValidateSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateSpecError::NoTasks => write!(f, "specification has no tasks"),
            ValidateSpecError::DuplicateTaskName(n) => write!(f, "duplicate task name {n:?}"),
            ValidateSpecError::DuplicateProcessorName(n) => {
                write!(f, "duplicate processor name {n:?}")
            }
            ValidateSpecError::DuplicateMessageName(n) => {
                write!(f, "duplicate message name {n:?}")
            }
            ValidateSpecError::BadTiming { task, detail } => {
                write!(f, "task {task:?} has invalid timing: {detail}")
            }
            ValidateSpecError::UnknownTask(n) => write!(f, "unknown task {n:?}"),
            ValidateSpecError::UnknownProcessor(n) => write!(f, "unknown processor {n:?}"),
            ValidateSpecError::SelfRelation(n) => {
                write!(f, "task {n:?} cannot relate to itself")
            }
            ValidateSpecError::PeriodMismatch { from, to } => write!(
                f,
                "precedence between {from:?} and {to:?} requires equal periods"
            ),
            ValidateSpecError::PrecedenceCycle(n) => {
                write!(f, "precedence cycle through task {n:?}")
            }
        }
    }
}

impl Error for ValidateSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ValidateSpecError::NoTasks.to_string(),
            "specification has no tasks"
        );
        assert!(ValidateSpecError::BadTiming {
            task: "t".into(),
            detail: "c > d".into()
        }
        .to_string()
        .contains("invalid timing"));
        assert!(ValidateSpecError::PeriodMismatch {
            from: "a".into(),
            to: "b".into()
        }
        .to_string()
        .contains("equal periods"));
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<ValidateSpecError>();
    }
}
