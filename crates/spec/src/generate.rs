//! Seeded synthetic workload generation for benchmarks.
//!
//! The paper evaluates on a single case study; the benchmark harness of
//! this reproduction adds scalability sweeps over synthetic task sets. Task
//! utilizations are drawn with the standard **UUniFast** algorithm (Bini &
//! Buttazzo), periods from a harmonic-friendly pool (so hyper-periods stay
//! small), and optional precedence/exclusion relations are sprinkled over
//! same-period task pairs.

use crate::{EzSpec, SchedulingMethod, SpecBuilder, Time};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`synthetic_spec`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of tasks to generate.
    pub tasks: usize,
    /// Target total processor utilization in `(0, 1]`.
    pub total_utilization: f64,
    /// Pool of candidate periods; chosen uniformly per task.
    pub periods: Vec<Time>,
    /// Fraction of tasks scheduled preemptively (`0.0` = all
    /// non-preemptive, matching the mine pump).
    pub preemptive_fraction: f64,
    /// Probability that an ordered same-period task pair gets a precedence
    /// edge (cycle-safe: edges always point from lower to higher index).
    pub precedence_probability: f64,
    /// Probability that an unordered same-period task pair gets an
    /// exclusion edge.
    pub exclusion_probability: f64,
    /// Whether deadlines are implicit (`d = p`) or constrained (uniform in
    /// `[c, p]`).
    pub constrained_deadlines: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            tasks: 5,
            total_utilization: 0.6,
            periods: vec![50, 100, 200, 400],
            preemptive_fraction: 0.0,
            precedence_probability: 0.0,
            exclusion_probability: 0.0,
            constrained_deadlines: false,
        }
    }
}

/// Draws `n` utilizations summing to `total` with the UUniFast algorithm.
///
/// # Panics
///
/// Panics if `n == 0` or `total <= 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = ezrt_spec::generate::uunifast(4, 0.8, &mut rng);
/// assert_eq!(u.len(), 4);
/// let sum: f64 = u.iter().sum();
/// assert!((sum - 0.8).abs() < 1e-9);
/// ```
pub fn uunifast(n: usize, total: f64, rng: &mut StdRng) -> Vec<f64> {
    assert!(n > 0, "cannot distribute utilization over zero tasks");
    assert!(total > 0.0, "total utilization must be positive");
    let mut utilizations = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next: f64 = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        utilizations.push(sum - next);
        sum = next;
    }
    utilizations.push(sum);
    utilizations
}

/// Generates a validated synthetic specification. Deterministic for a
/// given `(config, seed)` pair.
///
/// Computation times are clamped to at least 1 time unit and deadlines to
/// at least the computation time, so the result always satisfies
/// `1 ≤ c ≤ d ≤ p`.
///
/// # Panics
///
/// Panics if `config.tasks == 0`, `config.periods` is empty, or
/// `config.total_utilization <= 0`.
///
/// # Examples
///
/// ```
/// use ezrt_spec::generate::{synthetic_spec, WorkloadConfig};
///
/// let spec = synthetic_spec(&WorkloadConfig::default(), 42);
/// assert_eq!(spec.task_count(), 5);
/// assert!(spec.validate().is_ok());
/// let again = synthetic_spec(&WorkloadConfig::default(), 42);
/// assert_eq!(spec, again, "generation is deterministic per seed");
/// ```
pub fn synthetic_spec(config: &WorkloadConfig, seed: u64) -> EzSpec {
    assert!(!config.periods.is_empty(), "period pool must not be empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let utilizations = uunifast(config.tasks, config.total_utilization, &mut rng);

    struct Draft {
        name: String,
        computation: Time,
        deadline: Time,
        period: Time,
        preemptive: bool,
    }

    let mut drafts = Vec::with_capacity(config.tasks);
    for (i, u) in utilizations.iter().enumerate() {
        let period = *config
            .periods
            .choose(&mut rng)
            .expect("period pool is non-empty");
        let computation = ((u * period as f64).round() as Time).clamp(1, period);
        let deadline = if config.constrained_deadlines {
            rng.gen_range(computation..=period)
        } else {
            period
        };
        let preemptive = rng.gen::<f64>() < config.preemptive_fraction;
        drafts.push(Draft {
            name: format!("task{i}"),
            computation,
            deadline,
            period,
            preemptive,
        });
    }

    let mut builder = SpecBuilder::new(format!("synthetic-{seed}"));
    for d in &drafts {
        let (c, dl, p, preemptive) = (d.computation, d.deadline, d.period, d.preemptive);
        builder = builder.task(&d.name, move |t| {
            let t = t.computation(c).deadline(dl).period(p);
            if preemptive {
                t.preemptive()
            } else {
                t.method(SchedulingMethod::NonPreemptive)
            }
        });
    }

    // Relations between same-period pairs only (validation requires it).
    for i in 0..drafts.len() {
        for j in (i + 1)..drafts.len() {
            if drafts[i].period != drafts[j].period {
                continue;
            }
            if rng.gen::<f64>() < config.precedence_probability {
                builder = builder.precedes(&drafts[i].name, &drafts[j].name);
            } else if rng.gen::<f64>() < config.exclusion_probability {
                builder = builder.excludes(&drafts[i].name, &drafts[j].name);
            }
        }
    }

    builder
        .build()
        .expect("generator output satisfies all validation rules by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 20] {
            let u = uunifast(n, 0.75, &mut rng);
            assert_eq!(u.len(), n);
            let sum: f64 = u.iter().sum();
            assert!((sum - 0.75).abs() < 1e-9, "n={n}: sum={sum}");
            assert!(u.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn synthetic_specs_are_valid_across_seeds() {
        let config = WorkloadConfig {
            tasks: 8,
            total_utilization: 0.9,
            preemptive_fraction: 0.5,
            precedence_probability: 0.3,
            exclusion_probability: 0.3,
            constrained_deadlines: true,
            ..WorkloadConfig::default()
        };
        for seed in 0..25 {
            let spec = synthetic_spec(&config, seed);
            assert!(spec.validate().is_ok(), "seed {seed} produced invalid spec");
            assert_eq!(spec.task_count(), 8);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let config = WorkloadConfig::default();
        assert_eq!(synthetic_spec(&config, 9), synthetic_spec(&config, 9));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let config = WorkloadConfig::default();
        assert_ne!(synthetic_spec(&config, 1), synthetic_spec(&config, 2));
    }

    #[test]
    fn preemptive_fraction_zero_yields_nonpreemptive_only() {
        let spec = synthetic_spec(&WorkloadConfig::default(), 3);
        for (_, t) in spec.tasks() {
            assert_eq!(t.method(), SchedulingMethod::NonPreemptive);
        }
    }

    #[test]
    fn preemptive_fraction_one_yields_preemptive_only() {
        let config = WorkloadConfig {
            preemptive_fraction: 1.0,
            ..WorkloadConfig::default()
        };
        let spec = synthetic_spec(&config, 3);
        for (_, t) in spec.tasks() {
            assert_eq!(t.method(), SchedulingMethod::Preemptive);
        }
    }

    #[test]
    fn utilization_roughly_matches_target() {
        let config = WorkloadConfig {
            tasks: 10,
            total_utilization: 0.5,
            ..WorkloadConfig::default()
        };
        let spec = synthetic_spec(&config, 11);
        let cpu = spec.processors().next().unwrap().0;
        let u = spec.utilization(cpu);
        // Rounding c to integers distorts utilization; allow slack.
        assert!(u > 0.2 && u < 0.8, "utilization {u} too far from 0.5");
    }

    #[test]
    #[should_panic(expected = "period pool")]
    fn empty_period_pool_panics() {
        let config = WorkloadConfig {
            periods: vec![],
            ..WorkloadConfig::default()
        };
        let _ = synthetic_spec(&config, 0);
    }
}
