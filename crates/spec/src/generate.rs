//! Seeded synthetic workload generation: random workloads, named spec
//! *families*, and structured mutators.
//!
//! The paper evaluates on a single case study; this reproduction adds
//! programmatic scenario construction in three tiers. [`synthetic_spec`]
//! draws a random workload (UUniFast utilizations, harmonic-friendly
//! period pool, sprinkled relations). [`family_spec`] produces the named
//! [`Family`] shapes — harmonic and near-harmonic periodic sets,
//! precedence chains and diamonds, exclusion cliques, multiprocessor
//! placements — each reproducible from a `u64` seed. [`Mutation`] applies
//! one structured edit (scale periods, tighten a deadline, add release
//! jitter, drop or add a relation) to an existing spec and names the
//! tasks the edit can touch, which the structural sub-digest machinery
//! verifies edit by edit.

use crate::model::TimingConstraints;
use crate::{EzSpec, SchedulingMethod, SpecBuilder, TaskId, Time, ValidateSpecError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`synthetic_spec`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of tasks to generate.
    pub tasks: usize,
    /// Target total processor utilization in `(0, 1]`.
    pub total_utilization: f64,
    /// Pool of candidate periods; chosen uniformly per task.
    pub periods: Vec<Time>,
    /// Fraction of tasks scheduled preemptively (`0.0` = all
    /// non-preemptive, matching the mine pump).
    pub preemptive_fraction: f64,
    /// Probability that an ordered same-period task pair gets a precedence
    /// edge (cycle-safe: edges always point from lower to higher index).
    pub precedence_probability: f64,
    /// Probability that an unordered same-period task pair gets an
    /// exclusion edge.
    pub exclusion_probability: f64,
    /// Whether deadlines are implicit (`d = p`) or constrained (uniform in
    /// `[c, p]`).
    pub constrained_deadlines: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            tasks: 5,
            total_utilization: 0.6,
            periods: vec![50, 100, 200, 400],
            preemptive_fraction: 0.0,
            precedence_probability: 0.0,
            exclusion_probability: 0.0,
            constrained_deadlines: false,
        }
    }
}

/// Draws `n` utilizations summing to `total` with the UUniFast algorithm.
///
/// # Panics
///
/// Panics if `n == 0` or `total <= 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = ezrt_spec::generate::uunifast(4, 0.8, &mut rng);
/// assert_eq!(u.len(), 4);
/// let sum: f64 = u.iter().sum();
/// assert!((sum - 0.8).abs() < 1e-9);
/// ```
pub fn uunifast(n: usize, total: f64, rng: &mut StdRng) -> Vec<f64> {
    assert!(n > 0, "cannot distribute utilization over zero tasks");
    assert!(total > 0.0, "total utilization must be positive");
    let mut utilizations = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next: f64 = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        utilizations.push(sum - next);
        sum = next;
    }
    utilizations.push(sum);
    utilizations
}

/// Generates a validated synthetic specification. Deterministic for a
/// given `(config, seed)` pair.
///
/// Computation times are clamped to at least 1 time unit and deadlines to
/// at least the computation time, so the result always satisfies
/// `1 ≤ c ≤ d ≤ p`.
///
/// # Panics
///
/// Panics if `config.tasks == 0`, `config.periods` is empty, or
/// `config.total_utilization <= 0`.
///
/// # Examples
///
/// ```
/// use ezrt_spec::generate::{synthetic_spec, WorkloadConfig};
///
/// let spec = synthetic_spec(&WorkloadConfig::default(), 42);
/// assert_eq!(spec.task_count(), 5);
/// assert!(spec.validate().is_ok());
/// let again = synthetic_spec(&WorkloadConfig::default(), 42);
/// assert_eq!(spec, again, "generation is deterministic per seed");
/// ```
pub fn synthetic_spec(config: &WorkloadConfig, seed: u64) -> EzSpec {
    assert!(!config.periods.is_empty(), "period pool must not be empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let utilizations = uunifast(config.tasks, config.total_utilization, &mut rng);

    struct Draft {
        name: String,
        computation: Time,
        deadline: Time,
        period: Time,
        preemptive: bool,
    }

    let mut drafts = Vec::with_capacity(config.tasks);
    for (i, u) in utilizations.iter().enumerate() {
        let period = *config
            .periods
            .choose(&mut rng)
            .expect("period pool is non-empty");
        let computation = ((u * period as f64).round() as Time).clamp(1, period);
        let deadline = if config.constrained_deadlines {
            rng.gen_range(computation..=period)
        } else {
            period
        };
        let preemptive = rng.gen::<f64>() < config.preemptive_fraction;
        drafts.push(Draft {
            name: format!("task{i}"),
            computation,
            deadline,
            period,
            preemptive,
        });
    }

    let mut builder = SpecBuilder::new(format!("synthetic-{seed}"));
    for d in &drafts {
        let (c, dl, p, preemptive) = (d.computation, d.deadline, d.period, d.preemptive);
        builder = builder.task(&d.name, move |t| {
            let t = t.computation(c).deadline(dl).period(p);
            if preemptive {
                t.preemptive()
            } else {
                t.method(SchedulingMethod::NonPreemptive)
            }
        });
    }

    // Relations between same-period pairs only (validation requires it).
    for i in 0..drafts.len() {
        for j in (i + 1)..drafts.len() {
            if drafts[i].period != drafts[j].period {
                continue;
            }
            if rng.gen::<f64>() < config.precedence_probability {
                builder = builder.precedes(&drafts[i].name, &drafts[j].name);
            } else if rng.gen::<f64>() < config.exclusion_probability {
                builder = builder.excludes(&drafts[i].name, &drafts[j].name);
            }
        }
    }

    builder
        .build()
        .expect("generator output satisfies all validation rules by construction")
}

/// A named specification family: a parameterized shape that
/// [`family_spec`] instantiates deterministically from a `u64` seed.
///
/// Every family produces a spec that passes the full validation suite;
/// feasibility is *not* guaranteed — overloaded instances are exactly
/// what the frontier sweeps go looking for.
#[derive(Debug, Clone, PartialEq)]
pub enum Family {
    /// Independent periodic tasks whose periods are `base_period · 2^k`
    /// — small hyper-periods, the friendly end of the spectrum.
    Harmonic {
        /// Number of tasks.
        tasks: usize,
        /// The smallest period; others are power-of-two multiples.
        base_period: Time,
        /// Target total utilization split with UUniFast.
        utilization: f64,
    },
    /// Harmonic periods perturbed by a small additive offset, so the
    /// hyper-period (and the state space) grows sharply.
    NearHarmonic {
        /// Number of tasks.
        tasks: usize,
        /// The smallest period before perturbation.
        base_period: Time,
        /// Target total utilization split with UUniFast.
        utilization: f64,
    },
    /// `t0 → t1 → … → t(n-1)`: one precedence chain, all tasks sharing
    /// one period (the validation suite requires equal periods on
    /// precedence pairs).
    PrecedenceChain {
        /// Chain length (number of tasks).
        length: usize,
        /// The shared period.
        period: Time,
        /// Target total utilization split with UUniFast.
        utilization: f64,
    },
    /// A fork–join: one source precedes `width` middle tasks, each of
    /// which precedes one sink.
    PrecedenceDiamond {
        /// Number of middle tasks between source and sink.
        width: usize,
        /// The shared period.
        period: Time,
        /// Target total utilization split with UUniFast.
        utilization: f64,
    },
    /// Tasks that pairwise exclude each other — the paper's critical
    /// sections, taken to the clique extreme.
    ExclusionClique {
        /// Number of mutually exclusive tasks.
        tasks: usize,
        /// The shared period.
        period: Time,
        /// Target total utilization split with UUniFast.
        utilization: f64,
    },
    /// Independent tasks placed across `processors` CPUs by a seeded
    /// draw.
    Multiprocessor {
        /// Number of tasks.
        tasks: usize,
        /// Number of processors (`cpu0` … `cpuN-1`).
        processors: usize,
        /// The shared period.
        period: Time,
        /// Target *aggregate* utilization across all processors.
        utilization: f64,
    },
}

impl Family {
    /// The family's stable name, used in generated spec names.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Harmonic { .. } => "harmonic",
            Family::NearHarmonic { .. } => "near-harmonic",
            Family::PrecedenceChain { .. } => "chain",
            Family::PrecedenceDiamond { .. } => "diamond",
            Family::ExclusionClique { .. } => "clique",
            Family::Multiprocessor { .. } => "multiprocessor",
        }
    }
}

/// Instantiates a [`Family`] deterministically: the same `(family,
/// seed)` pair always produces the same validated [`EzSpec`].
///
/// # Panics
///
/// Panics if the family's task count is zero, its period/base period is
/// zero, its utilization is not positive, or a multiprocessor family
/// names zero processors.
///
/// # Examples
///
/// ```
/// use ezrt_spec::generate::{family_spec, Family};
///
/// let family = Family::PrecedenceChain { length: 3, period: 20, utilization: 0.5 };
/// let spec = family_spec(&family, 7);
/// assert_eq!(spec.task_count(), 3);
/// assert_eq!(spec.precedences().len(), 2);
/// assert_eq!(spec, family_spec(&family, 7), "deterministic per seed");
/// ```
pub fn family_spec(family: &Family, seed: u64) -> EzSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let name = format!("{}-{seed}", family.name());
    // c_i targets u_i·p_i but stays inside [1, p_i] so `c ≤ d ≤ p`
    // always holds with implicit deadlines.
    let computation = |u: f64, period: Time| ((u * period as f64).round() as Time).clamp(1, period);
    match *family {
        Family::Harmonic {
            tasks,
            base_period,
            utilization,
        }
        | Family::NearHarmonic {
            tasks,
            base_period,
            utilization,
        } => {
            assert!(base_period > 0, "base period must be at least 1");
            let near = matches!(family, Family::NearHarmonic { .. });
            let utilizations = uunifast(tasks, utilization, &mut rng);
            let mut builder = SpecBuilder::new(name);
            for (i, u) in utilizations.iter().enumerate() {
                let mut period = base_period << rng.gen_range(0..3u32);
                if near {
                    // The additive offset breaks the power-of-two
                    // ladder, so periods are pairwise near-coprime and
                    // the hyper-period balloons.
                    period += rng.gen_range(0..=base_period / 8);
                }
                let c = computation(*u, period);
                builder = builder.task(format!("task{i}"), move |t| {
                    t.computation(c).deadline(period).period(period)
                });
            }
            builder.build()
        }
        Family::PrecedenceChain {
            length,
            period,
            utilization,
        } => {
            assert!(period > 0, "period must be at least 1");
            let utilizations = uunifast(length, utilization, &mut rng);
            let mut builder = SpecBuilder::new(name);
            for (i, u) in utilizations.iter().enumerate() {
                let c = computation(*u, period);
                builder = builder.task(format!("stage{i}"), move |t| {
                    t.computation(c).deadline(period).period(period)
                });
            }
            for i in 1..length {
                builder = builder.precedes(format!("stage{}", i - 1), format!("stage{i}"));
            }
            builder.build()
        }
        Family::PrecedenceDiamond {
            width,
            period,
            utilization,
        } => {
            assert!(width > 0, "diamond needs at least one middle task");
            assert!(period > 0, "period must be at least 1");
            let utilizations = uunifast(width + 2, utilization, &mut rng);
            let mut builder = SpecBuilder::new(name);
            let task_name = |i: usize| match i {
                0 => "source".to_owned(),
                i if i == width + 1 => "sink".to_owned(),
                i => format!("mid{}", i - 1),
            };
            for (i, u) in utilizations.iter().enumerate() {
                let c = computation(*u, period);
                builder = builder.task(task_name(i), move |t| {
                    t.computation(c).deadline(period).period(period)
                });
            }
            // Grouped by source task — the order the DSL printer
            // emits, so print → parse preserves the edge list exactly.
            for i in 1..=width {
                builder = builder.precedes("source", task_name(i));
            }
            for i in 1..=width {
                builder = builder.precedes(task_name(i), "sink");
            }
            builder.build()
        }
        Family::ExclusionClique {
            tasks,
            period,
            utilization,
        } => {
            assert!(period > 0, "period must be at least 1");
            let utilizations = uunifast(tasks, utilization, &mut rng);
            let mut builder = SpecBuilder::new(name);
            for (i, u) in utilizations.iter().enumerate() {
                let c = computation(*u, period);
                builder = builder.task(format!("crit{i}"), move |t| {
                    t.computation(c).deadline(period).period(period)
                });
            }
            for i in 0..tasks {
                for j in (i + 1)..tasks {
                    builder = builder.excludes(format!("crit{i}"), format!("crit{j}"));
                }
            }
            builder.build()
        }
        Family::Multiprocessor {
            tasks,
            processors,
            period,
            utilization,
        } => {
            assert!(processors > 0, "multiprocessor family needs a processor");
            assert!(period > 0, "period must be at least 1");
            let utilizations = uunifast(tasks, utilization, &mut rng);
            let mut builder = SpecBuilder::new(name);
            for p in 0..processors {
                builder = builder.processor(format!("cpu{p}"));
            }
            for (i, u) in utilizations.iter().enumerate() {
                let c = computation(*u, period);
                let cpu = format!("cpu{}", rng.gen_range(0..processors));
                builder = builder.task(format!("task{i}"), move |t| {
                    t.computation(c)
                        .deadline(period)
                        .period(period)
                        .on_processor(cpu)
                });
            }
            builder.build()
        }
    }
    .expect("family generators construct valid specs by construction")
}

/// One structured edit of an existing specification.
///
/// [`Mutation::apply`] rebuilds the spec through [`SpecBuilder`] with
/// the edit in place, so the result passes the full validation suite or
/// the edit is rejected with the same typed error a hand-written spec
/// would get. [`Mutation::touched`] names the tasks whose structural
/// sub-digest the edit *may* change — a superset of the actual diff,
/// which the incremental-synthesis tests check against
/// `Project::changed_tasks`.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Scales every period to `percent`% of its value (floored at 1),
    /// clamping deadlines back under the new period. Uniform scaling
    /// preserves period equality on precedence and message pairs.
    ScalePeriods {
        /// New period as a percentage of the old (100 = identity).
        percent: u64,
    },
    /// Scales one task's deadline to `percent`% of its value, clamped
    /// into the valid window `[release + computation, period]` — total
    /// on valid specs.
    TightenDeadline {
        /// The task to edit.
        task: String,
        /// New deadline as a percentage of the old.
        percent: u64,
    },
    /// Adds `jitter` to one task's release time. Rejected when the
    /// release window no longer fits the deadline.
    AddReleaseJitter {
        /// The task to edit.
        task: String,
        /// Extra release delay in time units.
        jitter: Time,
    },
    /// Drops one relation edge — precedences first, then exclusions,
    /// indexed modulo the combined count (identity on relation-free
    /// specs).
    DropRelation {
        /// Index into the concatenated precedence + exclusion list.
        index: usize,
    },
    /// Adds `from PRECEDES to`. Rejected on unknown tasks, period
    /// mismatch, self-relations or cycles.
    AddPrecedence {
        /// Predecessor task name.
        from: String,
        /// Successor task name.
        to: String,
    },
    /// Adds a (symmetric) exclusion between `a` and `b`. Duplicate
    /// edges deduplicate silently.
    AddExclusion {
        /// One side of the exclusion.
        a: String,
        /// The other side.
        b: String,
    },
}

impl Mutation {
    /// Applies the edit, re-validating the result.
    ///
    /// # Errors
    ///
    /// Returns the same [`ValidateSpecError`] a hand-built spec with
    /// the edited values would: an unknown task name, a timing window
    /// that no longer closes, a period mismatch or a precedence cycle.
    pub fn apply(&self, spec: &EzSpec) -> Result<EzSpec, ValidateSpecError> {
        let mut timings: Vec<TimingConstraints> =
            spec.tasks().map(|(_, task)| task.timing()).collect();
        let (mut precedences, mut exclusions) = relation_names(spec);
        match self {
            Mutation::ScalePeriods { percent } => {
                for timing in &mut timings {
                    let period = (timing.period.saturating_mul(*percent) / 100).max(1);
                    timing.deadline = timing.deadline.min(period);
                    timing.period = period;
                }
            }
            Mutation::TightenDeadline { task, percent } => {
                let id = spec
                    .task_id(task)
                    .ok_or_else(|| ValidateSpecError::UnknownTask(task.clone()))?;
                let timing = &mut timings[id.index()];
                let floor = timing.release + timing.computation;
                timing.deadline =
                    (timing.deadline.saturating_mul(*percent) / 100).clamp(floor, timing.period);
            }
            Mutation::AddReleaseJitter { task, jitter } => {
                let id = spec
                    .task_id(task)
                    .ok_or_else(|| ValidateSpecError::UnknownTask(task.clone()))?;
                timings[id.index()].release = timings[id.index()].release.saturating_add(*jitter);
            }
            Mutation::DropRelation { index } => {
                let total = precedences.len() + exclusions.len();
                if total > 0 {
                    let index = index % total;
                    if index < precedences.len() {
                        precedences.remove(index);
                    } else {
                        exclusions.remove(index - precedences.len());
                    }
                }
            }
            Mutation::AddPrecedence { from, to } => {
                precedences.push((from.clone(), to.clone()));
            }
            Mutation::AddExclusion { a, b } => {
                exclusions.push((a.clone(), b.clone()));
            }
        }
        rebuild(spec, &timings, &precedences, &exclusions)
    }

    /// The names of the tasks whose sub-digest this edit may change —
    /// a (sorted, deduplicated) superset of the actual structural diff.
    pub fn touched(&self, spec: &EzSpec) -> Vec<String> {
        let mut touched: Vec<String> = match self {
            Mutation::ScalePeriods { percent } if *percent == 100 => Vec::new(),
            Mutation::ScalePeriods { .. } => {
                spec.tasks().map(|(_, t)| t.name().to_owned()).collect()
            }
            Mutation::TightenDeadline { task, .. } | Mutation::AddReleaseJitter { task, .. } => {
                vec![task.clone()]
            }
            Mutation::DropRelation { index } => {
                let (precedences, exclusions) = relation_names(spec);
                let total = precedences.len() + exclusions.len();
                if total == 0 {
                    Vec::new()
                } else {
                    let index = index % total;
                    let (a, b) = if index < precedences.len() {
                        precedences[index].clone()
                    } else {
                        exclusions[index - precedences.len()].clone()
                    };
                    vec![a, b]
                }
            }
            Mutation::AddPrecedence { from, to } => vec![from.clone(), to.clone()],
            Mutation::AddExclusion { a, b } => vec![a.clone(), b.clone()],
        };
        touched.sort();
        touched.dedup();
        touched
    }
}

/// Draws one [`Mutation`] for `spec`, deterministically per seed. Edits
/// that need a task pair prefer same-period pairs (the only ones that
/// can pass validation) and fall back to a deadline edit when the spec
/// has none.
pub fn random_mutation(spec: &EzSpec, seed: u64) -> Mutation {
    let mut rng = StdRng::seed_from_u64(seed);
    let task_name = |rng: &mut StdRng| {
        let index = rng.gen_range(0..spec.task_count());
        spec.task(TaskId::from_index(index)).name().to_owned()
    };
    let same_period_pairs: Vec<(String, String)> = {
        let tasks: Vec<(&str, Time)> = spec
            .tasks()
            .map(|(_, t)| (t.name(), t.timing().period))
            .collect();
        let mut pairs = Vec::new();
        for i in 0..tasks.len() {
            for j in (i + 1)..tasks.len() {
                if tasks[i].1 == tasks[j].1 {
                    pairs.push((tasks[i].0.to_owned(), tasks[j].0.to_owned()));
                }
            }
        }
        pairs
    };
    // Pairs already carrying the relation are excluded up front: a
    // duplicate edge would be deduplicated away at rebuild, turning the
    // "mutation" into an identity.
    let (precedences, exclusions) = relation_names(spec);
    let has_precedence = |a: &str, b: &str| {
        precedences
            .iter()
            .any(|(from, to)| (from == a && to == b) || (from == b && to == a))
    };
    let has_exclusion = |a: &str, b: &str| {
        exclusions
            .iter()
            .any(|(x, y)| (x == a && y == b) || (x == b && y == a))
    };
    match rng.gen_range(0..6u32) {
        0 => Mutation::ScalePeriods {
            percent: rng.gen_range(50..=200),
        },
        1 => Mutation::TightenDeadline {
            task: task_name(&mut rng),
            percent: rng.gen_range(25..=100),
        },
        2 => Mutation::AddReleaseJitter {
            task: task_name(&mut rng),
            jitter: rng.gen_range(0..=3),
        },
        3 => Mutation::DropRelation {
            index: rng.gen::<u32>() as usize,
        },
        kind => {
            let fresh: Vec<&(String, String)> = same_period_pairs
                .iter()
                .filter(|(a, b)| {
                    if kind == 4 {
                        !has_precedence(a, b)
                    } else {
                        !has_exclusion(a, b)
                    }
                })
                .collect();
            match fresh.choose(&mut rng) {
                Some((a, b)) if kind == 4 => Mutation::AddPrecedence {
                    from: a.clone(),
                    to: b.clone(),
                },
                Some((a, b)) => Mutation::AddExclusion {
                    a: a.clone(),
                    b: b.clone(),
                },
                None => Mutation::TightenDeadline {
                    task: task_name(&mut rng),
                    percent: rng.gen_range(25..=100),
                },
            }
        }
    }
}

/// A relation edge list expressed as task-name pairs.
type NamePairs = Vec<(String, String)>;

/// The spec's relation edges as name pairs, in declaration order.
pub(crate) fn relation_names(spec: &EzSpec) -> (NamePairs, NamePairs) {
    let name = |id: TaskId| spec.task(id).name().to_owned();
    let precedences = spec
        .precedences()
        .iter()
        .map(|&(from, to)| (name(from), name(to)))
        .collect();
    let exclusions = spec
        .exclusions()
        .iter()
        .map(|&(a, b)| (name(a), name(b)))
        .collect();
    (precedences, exclusions)
}

/// Rebuilds `spec` through [`SpecBuilder`] with per-task timing
/// overrides (in task order) and a replaced relation set, re-running
/// the full validation suite. Processors, placements, methods, energy,
/// code and messages carry over unchanged.
pub(crate) fn rebuild(
    spec: &EzSpec,
    timings: &[TimingConstraints],
    precedences: &[(String, String)],
    exclusions: &[(String, String)],
) -> Result<EzSpec, ValidateSpecError> {
    let mut builder = SpecBuilder::new(spec.name()).dispatcher_overhead(spec.dispatcher_overhead());
    for (_, processor) in spec.processors() {
        builder = builder.processor(processor.name());
    }
    for ((_, task), timing) in spec.tasks().zip(timings) {
        let timing = *timing;
        let method = task.method();
        let processor = spec.processor(task.processor()).name().to_owned();
        let energy = task.energy();
        let code = task.code().map(|c| c.content().to_owned());
        builder = builder.task(task.name(), move |t| {
            let t = t
                .timing(timing)
                .method(method)
                .on_processor(processor)
                .energy(energy);
            match code {
                Some(code) => t.code(code),
                None => t,
            }
        });
    }
    for (from, to) in precedences {
        builder = builder.precedes(from.clone(), to.clone());
    }
    for (a, b) in exclusions {
        builder = builder.excludes(a.clone(), b.clone());
    }
    for (_, message) in spec.messages() {
        builder = builder.message(
            message.name(),
            spec.task(message.sender()).name(),
            spec.task(message.receiver()).name(),
            message.bus(),
            message.grant_bus(),
            message.communication(),
        );
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 20] {
            let u = uunifast(n, 0.75, &mut rng);
            assert_eq!(u.len(), n);
            let sum: f64 = u.iter().sum();
            assert!((sum - 0.75).abs() < 1e-9, "n={n}: sum={sum}");
            assert!(u.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn synthetic_specs_are_valid_across_seeds() {
        let config = WorkloadConfig {
            tasks: 8,
            total_utilization: 0.9,
            preemptive_fraction: 0.5,
            precedence_probability: 0.3,
            exclusion_probability: 0.3,
            constrained_deadlines: true,
            ..WorkloadConfig::default()
        };
        for seed in 0..25 {
            let spec = synthetic_spec(&config, seed);
            assert!(spec.validate().is_ok(), "seed {seed} produced invalid spec");
            assert_eq!(spec.task_count(), 8);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let config = WorkloadConfig::default();
        assert_eq!(synthetic_spec(&config, 9), synthetic_spec(&config, 9));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let config = WorkloadConfig::default();
        assert_ne!(synthetic_spec(&config, 1), synthetic_spec(&config, 2));
    }

    #[test]
    fn preemptive_fraction_zero_yields_nonpreemptive_only() {
        let spec = synthetic_spec(&WorkloadConfig::default(), 3);
        for (_, t) in spec.tasks() {
            assert_eq!(t.method(), SchedulingMethod::NonPreemptive);
        }
    }

    #[test]
    fn preemptive_fraction_one_yields_preemptive_only() {
        let config = WorkloadConfig {
            preemptive_fraction: 1.0,
            ..WorkloadConfig::default()
        };
        let spec = synthetic_spec(&config, 3);
        for (_, t) in spec.tasks() {
            assert_eq!(t.method(), SchedulingMethod::Preemptive);
        }
    }

    #[test]
    fn utilization_roughly_matches_target() {
        let config = WorkloadConfig {
            tasks: 10,
            total_utilization: 0.5,
            ..WorkloadConfig::default()
        };
        let spec = synthetic_spec(&config, 11);
        let cpu = spec.processors().next().unwrap().0;
        let u = spec.utilization(cpu);
        // Rounding c to integers distorts utilization; allow slack.
        assert!(u > 0.2 && u < 0.8, "utilization {u} too far from 0.5");
    }

    #[test]
    #[should_panic(expected = "period pool")]
    fn empty_period_pool_panics() {
        let config = WorkloadConfig {
            periods: vec![],
            ..WorkloadConfig::default()
        };
        let _ = synthetic_spec(&config, 0);
    }

    fn sample_families() -> Vec<Family> {
        vec![
            Family::Harmonic {
                tasks: 4,
                base_period: 10,
                utilization: 0.5,
            },
            Family::NearHarmonic {
                tasks: 4,
                base_period: 16,
                utilization: 0.5,
            },
            Family::PrecedenceChain {
                length: 4,
                period: 20,
                utilization: 0.6,
            },
            Family::PrecedenceDiamond {
                width: 3,
                period: 20,
                utilization: 0.6,
            },
            Family::ExclusionClique {
                tasks: 4,
                period: 20,
                utilization: 0.5,
            },
            Family::Multiprocessor {
                tasks: 5,
                processors: 3,
                period: 20,
                utilization: 1.2,
            },
        ]
    }

    #[test]
    fn families_are_valid_and_deterministic_per_seed() {
        for family in sample_families() {
            for seed in 0..8 {
                let spec = family_spec(&family, seed);
                assert!(
                    spec.validate().is_ok(),
                    "{} seed {seed} invalid",
                    family.name()
                );
                assert_eq!(
                    spec,
                    family_spec(&family, seed),
                    "{} seed {seed} not deterministic",
                    family.name()
                );
            }
            assert_ne!(family_spec(&family, 1), family_spec(&family, 2));
        }
    }

    #[test]
    fn family_shapes_match_their_names() {
        let chain = family_spec(
            &Family::PrecedenceChain {
                length: 5,
                period: 20,
                utilization: 0.5,
            },
            3,
        );
        assert_eq!(chain.precedences().len(), 4);
        let diamond = family_spec(
            &Family::PrecedenceDiamond {
                width: 3,
                period: 20,
                utilization: 0.5,
            },
            3,
        );
        assert_eq!(diamond.task_count(), 5);
        assert_eq!(diamond.precedences().len(), 6);
        let clique = family_spec(
            &Family::ExclusionClique {
                tasks: 4,
                period: 20,
                utilization: 0.5,
            },
            3,
        );
        assert_eq!(clique.exclusions().len(), 6);
        let placed = family_spec(
            &Family::Multiprocessor {
                tasks: 8,
                processors: 3,
                period: 20,
                utilization: 1.5,
            },
            3,
        );
        assert_eq!(placed.processors().count(), 3);
        let near = family_spec(
            &Family::NearHarmonic {
                tasks: 6,
                base_period: 16,
                utilization: 0.5,
            },
            5,
        );
        let harmonic = family_spec(
            &Family::Harmonic {
                tasks: 6,
                base_period: 16,
                utilization: 0.5,
            },
            5,
        );
        assert!(near.hyperperiod() >= harmonic.hyperperiod());
    }

    #[test]
    fn scale_periods_is_uniform_and_identity_at_100() {
        let spec = family_spec(
            &Family::PrecedenceChain {
                length: 3,
                period: 20,
                utilization: 0.5,
            },
            1,
        );
        let identity = Mutation::ScalePeriods { percent: 100 };
        assert_eq!(identity.apply(&spec).unwrap(), spec);
        assert!(identity.touched(&spec).is_empty());
        let doubled = Mutation::ScalePeriods { percent: 200 }
            .apply(&spec)
            .unwrap();
        for (_, task) in doubled.tasks() {
            assert_eq!(task.timing().period, 40);
        }
        // Uniform scaling keeps precedence pairs on equal periods, so
        // the rebuilt spec re-validates.
        assert_eq!(doubled.precedences().len(), 2);
    }

    #[test]
    fn tighten_deadline_clamps_into_the_valid_window() {
        let spec = SpecBuilder::new("clamp")
            .task("a", |t| t.release(2).computation(3).deadline(10).period(20))
            .build()
            .unwrap();
        // 10% of 10 = 1, below release + computation = 5 → clamped.
        let tightened = Mutation::TightenDeadline {
            task: "a".into(),
            percent: 10,
        }
        .apply(&spec)
        .unwrap();
        assert_eq!(tightened.task_by_name("a").unwrap().timing().deadline, 5);
        // 300% of 10 = 30, above the period → clamped to 20.
        let loosened = Mutation::TightenDeadline {
            task: "a".into(),
            percent: 300,
        }
        .apply(&spec)
        .unwrap();
        assert_eq!(loosened.task_by_name("a").unwrap().timing().deadline, 20);
    }

    #[test]
    fn mutations_reject_with_typed_errors() {
        let spec = family_spec(
            &Family::PrecedenceChain {
                length: 3,
                period: 20,
                utilization: 0.5,
            },
            1,
        );
        assert!(matches!(
            Mutation::TightenDeadline {
                task: "ghost".into(),
                percent: 50
            }
            .apply(&spec),
            Err(ValidateSpecError::UnknownTask(_))
        ));
        // Closing the chain is a cycle.
        assert!(matches!(
            Mutation::AddPrecedence {
                from: "stage2".into(),
                to: "stage0".into()
            }
            .apply(&spec),
            Err(ValidateSpecError::PrecedenceCycle(_))
        ));
        // A release pushed past the deadline no longer fits.
        assert!(matches!(
            Mutation::AddReleaseJitter {
                task: "stage0".into(),
                jitter: 1000
            }
            .apply(&spec),
            Err(ValidateSpecError::BadTiming { .. })
        ));
    }

    #[test]
    fn drop_relation_wraps_and_is_identity_without_relations() {
        let spec = family_spec(
            &Family::PrecedenceChain {
                length: 3,
                period: 20,
                utilization: 0.5,
            },
            1,
        );
        let dropped = Mutation::DropRelation { index: 7 }.apply(&spec).unwrap();
        assert_eq!(dropped.precedences().len(), 1, "7 % 2 = 1 dropped edge 1");
        let bare = SpecBuilder::new("bare")
            .task("a", |t| t.computation(1).deadline(5).period(10))
            .build()
            .unwrap();
        assert_eq!(
            Mutation::DropRelation { index: 3 }.apply(&bare).unwrap(),
            bare
        );
        assert!(Mutation::DropRelation { index: 3 }
            .touched(&bare)
            .is_empty());
    }

    #[test]
    fn touched_names_both_relation_endpoints() {
        let spec = family_spec(
            &Family::ExclusionClique {
                tasks: 3,
                period: 20,
                utilization: 0.5,
            },
            1,
        );
        let touched = Mutation::DropRelation { index: 0 }.touched(&spec);
        assert_eq!(touched, vec!["crit0".to_owned(), "crit1".to_owned()]);
        let touched = Mutation::AddPrecedence {
            from: "crit2".into(),
            to: "crit0".into(),
        }
        .touched(&spec);
        assert_eq!(touched, vec!["crit0".to_owned(), "crit2".to_owned()]);
    }

    #[test]
    fn random_mutations_are_deterministic_and_mostly_applicable() {
        let spec = family_spec(
            &Family::ExclusionClique {
                tasks: 4,
                period: 20,
                utilization: 0.5,
            },
            2,
        );
        let mut applied = 0;
        for seed in 0..64 {
            let mutation = random_mutation(&spec, seed);
            assert_eq!(mutation, random_mutation(&spec, seed));
            if mutation.apply(&spec).is_ok() {
                applied += 1;
            }
        }
        assert!(applied >= 32, "only {applied}/64 mutations applied");
    }

    #[test]
    fn rebuild_preserves_placements_and_messages() {
        let spec = SpecBuilder::new("carry")
            .processor("arm9")
            .task("tx", |t| {
                t.computation(1)
                    .deadline(5)
                    .period(10)
                    .on_processor("arm9")
                    .preemptive()
                    .energy(3)
                    .code("send();")
            })
            .task("rx", |t| t.computation(1).deadline(9).period(10))
            .message("frame", "tx", "rx", "can0", 1, 2)
            .build()
            .unwrap();
        let unchanged = Mutation::ScalePeriods { percent: 100 }
            .apply(&spec)
            .unwrap();
        assert_eq!(unchanged, spec);
        let scaled = Mutation::ScalePeriods { percent: 200 }
            .apply(&spec)
            .unwrap();
        let tx = scaled.task_by_name("tx").unwrap();
        assert_eq!(scaled.processor(tx.processor()).name(), "arm9");
        assert_eq!(tx.method(), SchedulingMethod::Preemptive);
        assert_eq!(tx.energy(), 3);
        assert_eq!(tx.code().unwrap().content(), "send();");
        assert_eq!(scaled.messages().count(), 1);
    }
}
