//! Parameter grids over a base specification: the input half of the
//! feasibility-frontier sweeps.
//!
//! A [`SweepGrid`] names up to three axes — period scale, deadline
//! scale (both in percent) and absolute release jitter — each with an
//! explicit value list. [`SweepGrid::points`] expands the Cartesian
//! product in a fixed lexicographic order (periods outermost, jitter
//! innermost), and [`SweepPoint::apply`] derives the concrete spec for
//! one point by rebuilding the base through the validating
//! [`SpecBuilder`](crate::SpecBuilder) path. The whole pipeline is
//! pure: same base + same grid → same point list → same derived specs,
//! which is what lets the sweep engine promise byte-identical frontier
//! rows regardless of how the points fan out over worker threads.
//!
//! Grid text looks like `periods:100,150;deadlines:75,100;jitter:0,2` —
//! axes split on `;`, an axis names its values after `:`, values split
//! on `,`. Omitted axes default to the identity (`100`% scales, `0`
//! jitter). The identity point `periods=100 deadlines=100 jitter=0`
//! reproduces the base spec bit for bit, so its digest (and any cached
//! outcome) is shared with non-sweep requests for the same spec.

use crate::model::TimingConstraints;
use crate::{generate, EzSpec, Time, ValidateSpecError};

/// Upper bound on the number of points one grid may expand to: the CLI
/// refuses larger grids and the HTTP front end answers 400, keeping one
/// request from pinning a server for minutes.
pub const MAX_SWEEP_POINTS: usize = 256;

/// A parsed parameter grid; see the module docs for the text syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    periods: Vec<u64>,
    deadlines: Vec<u64>,
    jitters: Vec<Time>,
}

impl SweepGrid {
    /// Parses grid text like `periods:100,150;deadlines:75,100`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an unknown or repeated axis,
    /// a malformed value, or an empty axis.
    ///
    /// # Examples
    ///
    /// ```
    /// use ezrt_spec::sweep::SweepGrid;
    ///
    /// let grid = SweepGrid::parse("periods:100,150;jitter:0,1,2").unwrap();
    /// assert_eq!(grid.len(), 6);
    /// assert!(SweepGrid::parse("volume:11").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<SweepGrid, String> {
        let mut periods: Option<Vec<u64>> = None;
        let mut deadlines: Option<Vec<u64>> = None;
        let mut jitters: Option<Vec<Time>> = None;
        for axis in text.split(';') {
            let axis = axis.trim();
            let Some((name, values)) = axis.split_once(':') else {
                return Err(format!(
                    "axis `{axis}` must look like `name:v1,v2` (axes separated by `;`)"
                ));
            };
            let name = name.trim();
            let values: Vec<u64> = values
                .split(',')
                .map(|value| {
                    let value = value.trim();
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad value `{value}` on axis `{name}`"))
                })
                .collect::<Result<_, _>>()?;
            let slot = match name {
                "periods" => &mut periods,
                "deadlines" => &mut deadlines,
                "jitter" => &mut jitters,
                other => {
                    return Err(format!(
                        "unknown axis `{other}` (expected periods, deadlines or jitter)"
                    ))
                }
            };
            if slot.is_some() {
                return Err(format!("axis `{name}` given twice"));
            }
            *slot = Some(values);
        }
        Ok(SweepGrid {
            periods: periods.unwrap_or_else(|| vec![100]),
            deadlines: deadlines.unwrap_or_else(|| vec![100]),
            jitters: jitters.unwrap_or_else(|| vec![0]),
        })
    }

    /// The number of points the grid expands to.
    pub fn len(&self) -> usize {
        self.periods.len() * self.deadlines.len() * self.jitters.len()
    }

    /// Whether the grid expands to no points (an axis was given with no
    /// values — `parse` never produces this, omitted axes default to
    /// the identity).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the Cartesian product, periods outermost and jitter
    /// innermost, each axis in its declared value order.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        for &periods_percent in &self.periods {
            for &deadlines_percent in &self.deadlines {
                for &jitter in &self.jitters {
                    points.push(SweepPoint {
                        periods_percent,
                        deadlines_percent,
                        jitter,
                    });
                }
            }
        }
        points
    }
}

/// One grid point: the parameter triple applied to the base spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepPoint {
    /// Period scale in percent (100 = unchanged).
    pub periods_percent: u64,
    /// Deadline scale in percent, clamped into the valid window.
    pub deadlines_percent: u64,
    /// Absolute extra release delay in time units.
    pub jitter: Time,
}

impl SweepPoint {
    /// The point that reproduces the base spec exactly.
    pub const IDENTITY: SweepPoint = SweepPoint {
        periods_percent: 100,
        deadlines_percent: 100,
        jitter: 0,
    };

    /// A stable human-readable label, used as the `point` field of
    /// frontier rows.
    pub fn label(&self) -> String {
        format!(
            "periods={} deadlines={} jitter={}",
            self.periods_percent, self.deadlines_percent, self.jitter
        )
    }

    /// Derives the concrete spec for this point. Per task, in order:
    /// the period is scaled (`p' = max(1, p·pp/100)`), the jitter is
    /// added to the release, and the deadline is scaled then clamped
    /// into `[release' + computation, p']` so mild scalings stay valid.
    /// Points that leave no legal window (the period shrunk below the
    /// release window, say) fail validation with the usual typed error
    /// — the sweep engine reports those as `invalid` rows, not crashes.
    ///
    /// # Errors
    ///
    /// Returns the [`ValidateSpecError`] of the first task whose
    /// transformed timing no longer closes.
    pub fn apply(&self, base: &EzSpec) -> Result<EzSpec, ValidateSpecError> {
        let timings: Vec<TimingConstraints> = base
            .tasks()
            .map(|(_, task)| {
                let t = task.timing();
                let period = (t.period.saturating_mul(self.periods_percent) / 100).max(1);
                let release = t.release.saturating_add(self.jitter);
                let floor = release.saturating_add(t.computation);
                let deadline = (t.deadline.saturating_mul(self.deadlines_percent) / 100)
                    .max(floor)
                    .min(period);
                TimingConstraints {
                    phase: t.phase,
                    release,
                    computation: t.computation,
                    deadline,
                    period,
                }
            })
            .collect();
        let (precedences, exclusions) = generate::relation_names(base);
        generate::rebuild(base, &timings, &precedences, &exclusions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::small_control;
    use crate::SpecBuilder;

    #[test]
    fn parse_expands_lexicographically_with_identity_defaults() {
        let grid = SweepGrid::parse("periods:100,150;deadlines:75,100").unwrap();
        assert_eq!(grid.len(), 4);
        assert!(!grid.is_empty());
        let points: Vec<String> = grid.points().iter().map(SweepPoint::label).collect();
        assert_eq!(
            points,
            [
                "periods=100 deadlines=75 jitter=0",
                "periods=100 deadlines=100 jitter=0",
                "periods=150 deadlines=75 jitter=0",
                "periods=150 deadlines=100 jitter=0",
            ]
        );
        // A jitter-only grid defaults the scales to the identity.
        let grid = SweepGrid::parse("jitter:0,1").unwrap();
        assert_eq!(grid.points()[0], SweepPoint::IDENTITY);
    }

    #[test]
    fn parse_rejects_malformed_grids() {
        assert!(SweepGrid::parse("volume:11").is_err());
        assert!(SweepGrid::parse("periods").is_err());
        assert!(SweepGrid::parse("periods:ten").is_err());
        assert!(SweepGrid::parse("periods:100;periods:150").is_err());
        assert!(SweepGrid::parse("periods:").is_err());
    }

    #[test]
    fn identity_point_reproduces_the_base_spec() {
        let base = small_control();
        assert_eq!(SweepPoint::IDENTITY.apply(&base).unwrap(), base);
    }

    #[test]
    fn scaling_preserves_validity_and_relation_periods() {
        let base = small_control();
        for point in SweepGrid::parse("periods:50,100,200;deadlines:50,100;jitter:0,1")
            .unwrap()
            .points()
        {
            match point.apply(&base) {
                Ok(spec) => assert!(spec.validate().is_ok(), "{}", point.label()),
                // Shrinking may close a window; that is a typed error,
                // not a panic.
                Err(error) => assert!(!error.to_string().is_empty()),
            }
        }
    }

    #[test]
    fn impossible_points_fail_with_typed_errors() {
        let base = SpecBuilder::new("tight")
            .task("a", |t| t.computation(8).deadline(10).period(10))
            .build()
            .unwrap();
        // Scaling the period to 50% leaves p' = 5 < c = 8.
        let err = SweepPoint {
            periods_percent: 50,
            deadlines_percent: 100,
            jitter: 0,
        }
        .apply(&base)
        .unwrap_err();
        assert!(matches!(err, crate::ValidateSpecError::BadTiming { .. }));
    }

    #[test]
    fn deadline_scaling_clamps_into_the_window() {
        let base = SpecBuilder::new("clamp")
            .task("a", |t| t.release(2).computation(3).deadline(10).period(20))
            .build()
            .unwrap();
        let spec = SweepPoint {
            periods_percent: 100,
            deadlines_percent: 10,
            jitter: 1,
        }
        .apply(&base)
        .unwrap();
        let t = spec.task_by_name("a").unwrap().timing();
        // 10% of 10 = 1, clamped up to release' + c = 3 + 3 = 6.
        assert_eq!(t.release, 3);
        assert_eq!(t.deadline, 6);
    }
}
