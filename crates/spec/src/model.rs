//! The metamodel types of paper Fig. 5.

use crate::error::ValidateSpecError;
use crate::hyperperiod;
use crate::Time;
use std::fmt;

/// Index of a task within an [`EzSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u32);

/// Index of a processor within an [`EzSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessorId(pub(crate) u32);

/// Index of a message within an [`EzSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub(crate) u32);

macro_rules! impl_spec_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// The dense index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index (caller keeps it in range).
            pub fn from_index(index: usize) -> Self {
                $ty(index as u32)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_spec_id!(TaskId, "task");
impl_spec_id!(ProcessorId, "proc");
impl_spec_id!(MessageId, "msg");

/// The scheduling method of a task (the metamodel's `SchedulingType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulingMethod {
    /// The task owns the processor for its whole computation time; the
    /// paper's Fig. 2(a) block.
    #[default]
    NonPreemptive,
    /// The task is implicitly split into one-time-unit subtasks and may be
    /// preempted between any two of them; the paper's Fig. 2(b) block.
    Preemptive,
}

impl fmt::Display for SchedulingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingMethod::NonPreemptive => write!(f, "NP"),
            SchedulingMethod::Preemptive => write!(f, "P"),
        }
    }
}

/// The timing constraints `(ph_i, r_i, c_i, d_i, p_i)` of a periodic task
/// (paper §3.2).
///
/// `phase` delays the very first request after system start; `release`,
/// `computation` (WCET) and `deadline` are relative to the start of each
/// period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingConstraints {
    /// Phase offset `ph_i` of the first activation.
    pub phase: Time,
    /// Earliest start `r_i` within the period.
    pub release: Time,
    /// Worst-case execution time `c_i`.
    pub computation: Time,
    /// Relative deadline `d_i`.
    pub deadline: Time,
    /// Period `p_i`.
    pub period: Time,
}

impl TimingConstraints {
    /// Shorthand for the common case `ph = r = 0`, used by Table 1 of the
    /// paper.
    pub fn cdp(computation: Time, deadline: Time, period: Time) -> Self {
        TimingConstraints {
            phase: 0,
            release: 0,
            computation,
            deadline,
            period,
        }
    }

    /// The latest start time `d_i − c_i` within the period — the upper
    /// bound of the release transition `t_r` in the task-structure blocks.
    pub fn latest_start(&self) -> Time {
        self.deadline.saturating_sub(self.computation)
    }

    /// Processor utilization `c_i / p_i` contributed by this task.
    pub fn utilization(&self) -> f64 {
        self.computation as f64 / self.period as f64
    }
}

impl fmt::Display for TimingConstraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(ph={}, r={}, c={}, d={}, p={})",
            self.phase, self.release, self.computation, self.deadline, self.period
        )
    }
}

/// A behavioural source-code attachment (the metamodel's `SourceCodeC`):
/// the body of the C function that implements the task.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceCode {
    content: String,
}

impl SourceCode {
    /// Wraps raw C source text.
    pub fn new(content: impl Into<String>) -> Self {
        SourceCode {
            content: content.into(),
        }
    }

    /// The raw C source text.
    pub fn content(&self) -> &str {
        &self.content
    }
}

/// A periodic hard real-time task (the metamodel's `TaskC`).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    pub(crate) name: String,
    pub(crate) timing: TimingConstraints,
    pub(crate) method: SchedulingMethod,
    pub(crate) processor: ProcessorId,
    pub(crate) energy: u64,
    pub(crate) code: Option<SourceCode>,
}

impl Task {
    /// The task's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The timing constraints `(ph, r, c, d, p)`.
    pub fn timing(&self) -> TimingConstraints {
        self.timing
    }

    /// The scheduling method (preemptive / non-preemptive).
    pub fn method(&self) -> SchedulingMethod {
        self.method
    }

    /// The processor this task is bound to.
    pub fn processor(&self) -> ProcessorId {
        self.processor
    }

    /// The per-activation energy budget (the metamodel's `energy`, printed
    /// as `<power>` by the DSL of Fig. 7). Unused by the scheduler; carried
    /// for the energy-accounting extension in `ezrt-sim`.
    pub fn energy(&self) -> u64 {
        self.energy
    }

    /// The behavioural C code, if attached.
    pub fn code(&self) -> Option<&SourceCode> {
        self.code.as_ref()
    }
}

/// A processing element (the metamodel's `ProcessorC`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Processor {
    pub(crate) name: String,
}

impl Processor {
    /// The processor's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// An inter-task message over a named bus (the metamodel's `MessageC`).
///
/// A message imposes a data dependency: each instance of the receiver may
/// only start after the corresponding instance of the sender finished *and*
/// the message spent `communication` time units on the bus (after waiting
/// `grant_bus` for arbitration). On a mono-processor configuration with a
/// zero-cost bus this degenerates to a plain precedence relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub(crate) name: String,
    pub(crate) bus: String,
    pub(crate) sender: TaskId,
    pub(crate) receiver: TaskId,
    pub(crate) grant_bus: Time,
    pub(crate) communication: Time,
}

impl Message {
    /// The message's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bus the message travels on.
    pub fn bus(&self) -> &str {
        &self.bus
    }

    /// The producing task.
    pub fn sender(&self) -> TaskId {
        self.sender
    }

    /// The consuming task.
    pub fn receiver(&self) -> TaskId {
        self.receiver
    }

    /// Worst-case bus arbitration delay (the metamodel's `grantBus`).
    pub fn grant_bus(&self) -> Time {
        self.grant_bus
    }

    /// Worst-case transfer time (the metamodel's `communication`).
    pub fn communication(&self) -> Time {
        self.communication
    }
}

/// A complete ezRealtime specification (the metamodel's `EzRTSpecC`).
///
/// Construct through [`SpecBuilder`](crate::SpecBuilder); instances are
/// immutable and pre-validated.
#[derive(Debug, Clone, PartialEq)]
pub struct EzSpec {
    pub(crate) name: String,
    pub(crate) dispatcher_overhead: bool,
    pub(crate) tasks: Vec<Task>,
    pub(crate) processors: Vec<Processor>,
    pub(crate) messages: Vec<Message>,
    /// `(predecessor, successor)` pairs.
    pub(crate) precedences: Vec<(TaskId, TaskId)>,
    /// Normalized `(min, max)` pairs; the relation is symmetric.
    pub(crate) exclusions: Vec<(TaskId, TaskId)>,
}

impl EzSpec {
    /// The specification name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether generated code should model dispatcher overhead (the
    /// metamodel's `dispOveh` flag).
    pub fn dispatcher_overhead(&self) -> bool {
        self.dispatcher_overhead
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Iterates over `(id, task)` pairs.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::from_index(i), t))
    }

    /// Accesses a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Looks up a task by name.
    pub fn task_by_name(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Looks up a task id by name.
    pub fn task_id(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .iter()
            .position(|t| t.name == name)
            .map(TaskId::from_index)
    }

    /// Iterates over `(id, processor)` pairs.
    pub fn processors(&self) -> impl Iterator<Item = (ProcessorId, &Processor)> {
        self.processors
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessorId::from_index(i), p))
    }

    /// Accesses a processor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn processor(&self, id: ProcessorId) -> &Processor {
        &self.processors[id.index()]
    }

    /// Looks up a processor id by name.
    pub fn processor_id(&self, name: &str) -> Option<ProcessorId> {
        self.processors
            .iter()
            .position(|p| p.name == name)
            .map(ProcessorId::from_index)
    }

    /// Iterates over `(id, message)` pairs.
    pub fn messages(&self) -> impl Iterator<Item = (MessageId, &Message)> {
        self.messages
            .iter()
            .enumerate()
            .map(|(i, m)| (MessageId::from_index(i), m))
    }

    /// The `PRECEDES` pairs `(predecessor, successor)`.
    pub fn precedences(&self) -> &[(TaskId, TaskId)] {
        &self.precedences
    }

    /// The `EXCLUDES` pairs, normalized so the smaller id comes first.
    pub fn exclusions(&self) -> &[(TaskId, TaskId)] {
        &self.exclusions
    }

    /// Whether `a` and `b` mutually exclude each other (symmetric query).
    pub fn excludes(&self, a: TaskId, b: TaskId) -> bool {
        let key = (a.min(b), a.max(b));
        self.exclusions.contains(&key)
    }

    /// The schedule period `P_S`: the least common multiple of all task
    /// periods (paper §3.3.1).
    pub fn hyperperiod(&self) -> Time {
        hyperperiod::lcm_all(self.tasks.iter().map(|t| t.timing.period))
    }

    /// Number of instances `N(t_i) = P_S / p_i` of a task within the
    /// schedule period.
    pub fn instances_of(&self, id: TaskId) -> u64 {
        self.hyperperiod() / self.task(id).timing.period
    }

    /// Total task instances within the schedule period — 782 for the
    /// paper's mine pump.
    pub fn total_instances(&self) -> u64 {
        let hp = self.hyperperiod();
        self.tasks.iter().map(|t| hp / t.timing.period).sum()
    }

    /// Aggregate processor utilization `Σ c_i/p_i` of the tasks bound to
    /// `processor`. A value above 1.0 proves infeasibility.
    pub fn utilization(&self, processor: ProcessorId) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.processor == processor)
            .map(|t| t.timing.utilization())
            .sum()
    }

    /// Direct predecessors of `task` in the precedence relation.
    pub fn predecessors(&self, task: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.precedences
            .iter()
            .filter(move |&&(_, s)| s == task)
            .map(|&(p, _)| p)
    }

    /// Direct successors of `task` in the precedence relation.
    pub fn successors(&self, task: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.precedences
            .iter()
            .filter(move |&&(p, _)| p == task)
            .map(|&(_, s)| s)
    }

    /// Exclusion partners of `task`.
    pub fn exclusion_partners(&self, task: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.exclusions.iter().filter_map(move |&(a, b)| {
            if a == task {
                Some(b)
            } else if b == task {
                Some(a)
            } else {
                None
            }
        })
    }

    /// Re-runs the full validation suite; builder-produced specifications
    /// always pass.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateSpecError`] violated, checking: task
    /// presence, name uniqueness, `1 ≤ c ≤ d ≤ p`, `r + c ≤ d`, processor
    /// references, relation well-formedness (no self-relations, equal
    /// periods on precedence/message pairs, acyclic precedence graph) and
    /// message task references.
    pub fn validate(&self) -> Result<(), ValidateSpecError> {
        crate::builder::validate(self)
    }
}

impl fmt::Display for EzSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "spec {:?}: {} task(s), {} processor(s), hyperperiod {}",
            self.name,
            self.tasks.len(),
            self.processors.len(),
            self.hyperperiod()
        )?;
        for t in &self.tasks {
            writeln!(
                f,
                "  {} {} {} on {}",
                t.name,
                t.timing,
                t.method,
                self.processors[t.processor.index()].name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecBuilder;

    fn two_task_spec() -> EzSpec {
        SpecBuilder::new("two")
            .task("a", |t| t.computation(1).deadline(4).period(10))
            .task("b", |t| t.computation(2).deadline(5).period(5))
            .excludes("a", "b")
            .build()
            .unwrap()
    }

    #[test]
    fn id_displays() {
        assert_eq!(TaskId::from_index(1).to_string(), "task1");
        assert_eq!(ProcessorId::from_index(0).to_string(), "proc0");
        assert_eq!(MessageId::from_index(2).to_string(), "msg2");
    }

    #[test]
    fn timing_helpers() {
        let t = TimingConstraints::cdp(10, 20, 80);
        assert_eq!(t.latest_start(), 10);
        assert!((t.utilization() - 0.125).abs() < 1e-12);
        assert_eq!(t.to_string(), "(ph=0, r=0, c=10, d=20, p=80)");
    }

    #[test]
    fn hyperperiod_and_instances() {
        let spec = two_task_spec();
        assert_eq!(spec.hyperperiod(), 10);
        assert_eq!(spec.instances_of(spec.task_id("a").unwrap()), 1);
        assert_eq!(spec.instances_of(spec.task_id("b").unwrap()), 2);
        assert_eq!(spec.total_instances(), 3);
    }

    #[test]
    fn exclusion_is_symmetric() {
        let spec = two_task_spec();
        let a = spec.task_id("a").unwrap();
        let b = spec.task_id("b").unwrap();
        assert!(spec.excludes(a, b));
        assert!(spec.excludes(b, a));
        assert_eq!(spec.exclusion_partners(a).collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    fn utilization_sums_over_processor() {
        let spec = two_task_spec();
        let cpu = spec.processor_id("cpu0").unwrap();
        assert!((spec.utilization(cpu) - (0.1 + 0.4)).abs() < 1e-12);
    }

    #[test]
    fn precedence_queries() {
        let spec = SpecBuilder::new("chain")
            .task("x", |t| t.computation(1).deadline(5).period(10))
            .task("y", |t| t.computation(1).deadline(10).period(10))
            .precedes("x", "y")
            .build()
            .unwrap();
        let x = spec.task_id("x").unwrap();
        let y = spec.task_id("y").unwrap();
        assert_eq!(spec.successors(x).collect::<Vec<_>>(), vec![y]);
        assert_eq!(spec.predecessors(y).collect::<Vec<_>>(), vec![x]);
        assert_eq!(spec.predecessors(x).count(), 0);
    }

    #[test]
    fn display_summarizes_tasks() {
        let text = two_task_spec().to_string();
        assert!(text.contains("2 task(s)"));
        assert!(text.contains("hyperperiod 10"));
        assert!(text.contains("NP"));
    }

    #[test]
    fn scheduling_method_display() {
        assert_eq!(SchedulingMethod::NonPreemptive.to_string(), "NP");
        assert_eq!(SchedulingMethod::Preemptive.to_string(), "P");
    }
}
