//! Ready-made specifications for every case study and figure of the paper.
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`mine_pump`] | Table 1 + §5 case study (10 tasks, 782 instances) |
//! | [`figure3_spec`] | Fig. 3 precedence-relation example (T1 ⟶ T2) |
//! | [`figure4_spec`] | Fig. 4 exclusion-relation example (T0 ⊗ T2, preemptive) |
//! | [`figure8_spec`] | a 4-task preemptive system in the style of Fig. 8 |
//! | [`small_control`] | a small non-preemptive control system for quickstarts |

use crate::{EzSpec, SpecBuilder};

/// The mine pump case study of §5 — exactly Table 1 of the paper.
///
/// A simplified pump control system for a mining environment: the pump
/// drains a sump between low/high water levels but must stay off while the
/// methane level is critical; carbon monoxide and air flow are monitored as
/// well. Ten periodic tasks; `P_S = 30 000`; 782 task instances; all tasks
/// arrive simultaneously at time zero.
///
/// | task | C | D | P |
/// |------|---|---|---|
/// | PMC  | 10 | 20 | 80 |
/// | WFC  | 15 | 500 | 500 |
/// | RLWH | 1 | 1000 | 1000 |
/// | CH4H | 25 | 500 | 500 |
/// | CH4S | 5 | 100 | 500 |
/// | COH  | 15 | 100 | 2500 |
/// | AFH  | 15 | 200 | 6000 |
/// | WFH  | 15 | 300 | 500 |
/// | PDL  | 15 | 500 | 500 |
/// | SDL  | 10 | 500 | 500 |
///
/// # Examples
///
/// ```
/// let spec = ezrt_spec::corpus::mine_pump();
/// assert_eq!(spec.task_count(), 10);
/// assert_eq!(spec.hyperperiod(), 30_000);
/// assert_eq!(spec.total_instances(), 782);
/// ```
pub fn mine_pump() -> EzSpec {
    SpecBuilder::new("mine-pump")
        .task("PMC", |t| {
            t.computation(10)
                .deadline(20)
                .period(80)
                .code("/* pump motor control: drive the pump according to the last command */")
        })
        .task("WFC", |t| {
            t.computation(15)
                .deadline(500)
                .period(500)
                .code("/* water flow check: verify pump effect on water flow */")
        })
        .task("RLWH", |t| {
            t.computation(1)
                .deadline(1000)
                .period(1000)
                .code("/* read low water handler */")
        })
        .task("CH4H", |t| {
            t.computation(25)
                .deadline(500)
                .period(500)
                .code("/* methane high-level handler */")
        })
        .task("CH4S", |t| {
            t.computation(5)
                .deadline(100)
                .period(500)
                .code("/* methane sensor sampling */")
        })
        .task("COH", |t| {
            t.computation(15)
                .deadline(100)
                .period(2500)
                .code("/* carbon monoxide handler */")
        })
        .task("AFH", |t| {
            t.computation(15)
                .deadline(200)
                .period(6000)
                .code("/* air flow handler */")
        })
        .task("WFH", |t| {
            t.computation(15)
                .deadline(300)
                .period(500)
                .code("/* water flow handler */")
        })
        .task("PDL", |t| {
            t.computation(15)
                .deadline(500)
                .period(500)
                .code("/* pump data logger */")
        })
        .task("SDL", |t| {
            t.computation(10)
                .deadline(500)
                .period(500)
                .code("/* sensor data logger */")
        })
        .build()
        .expect("the paper's Table 1 is a valid specification")
}

/// The two-task precedence example of Fig. 3.
///
/// `T1 (c=15, d=100, p=250)` precedes `T2 (c=20, d=150, p=250)`; the
/// figure's release transitions carry the windows `[0, 85]` (= `d₁ − c₁`)
/// and `[0, 130]` (= `d₂ − c₂`) and the arrival transitions `[250, 250]`.
///
/// # Examples
///
/// ```
/// let spec = ezrt_spec::corpus::figure3_spec();
/// assert_eq!(spec.precedences().len(), 1);
/// assert_eq!(spec.task_by_name("T1").unwrap().timing().latest_start(), 85);
/// assert_eq!(spec.task_by_name("T2").unwrap().timing().latest_start(), 130);
/// ```
pub fn figure3_spec() -> EzSpec {
    SpecBuilder::new("figure3-precedence")
        .task("T1", |t| t.computation(15).deadline(100).period(250))
        .task("T2", |t| t.computation(20).deadline(150).period(250))
        .precedes("T1", "T2")
        .build()
        .expect("figure 3 example is a valid specification")
}

/// The two-task exclusion example of Fig. 4.
///
/// Preemptive tasks `T0 (c=10, d=100, p=250)` and `T2 (c=20, d=150,
/// p=250)` with `T0 EXCLUDES T2`; the figure's computation transitions are
/// the unit-step `[1, 1]` and the budget arcs carry weights 10 and 20.
///
/// # Examples
///
/// ```
/// use ezrt_spec::SchedulingMethod;
/// let spec = ezrt_spec::corpus::figure4_spec();
/// assert_eq!(spec.exclusions().len(), 1);
/// assert_eq!(spec.task_by_name("T0").unwrap().method(), SchedulingMethod::Preemptive);
/// ```
pub fn figure4_spec() -> EzSpec {
    SpecBuilder::new("figure4-exclusion")
        .task("T0", |t| {
            t.computation(10).deadline(100).period(250).preemptive()
        })
        .task("T2", |t| {
            t.computation(20).deadline(150).period(250).preemptive()
        })
        .excludes("T0", "T2")
        .build()
        .expect("figure 4 example is a valid specification")
}

/// A four-task preemptive system in the spirit of the Fig. 8 schedule
/// table: short urgent tasks (C, D) repeatedly preempt longer background
/// work (A, B), so the synthesized table exercises the `resumed` flag and
/// multiple execution parts per instance.
///
/// # Examples
///
/// ```
/// let spec = ezrt_spec::corpus::figure8_spec();
/// assert_eq!(spec.task_count(), 4);
/// assert_eq!(spec.hyperperiod(), 24);
/// ```
pub fn figure8_spec() -> EzSpec {
    SpecBuilder::new("figure8-preemptive")
        .task("TaskA", |t| {
            t.computation(7)
                .deadline(24)
                .period(24)
                .preemptive()
                .code("task_a_body();")
        })
        .task("TaskB", |t| {
            t.computation(4)
                .deadline(12)
                .period(12)
                .preemptive()
                .code("task_b_body();")
        })
        .task("TaskC", |t| {
            t.computation(2)
                .deadline(4)
                .period(8)
                .preemptive()
                .code("task_c_body();")
        })
        .task("TaskD", |t| {
            t.computation(1)
                .deadline(3)
                .period(24)
                .phase(5)
                .preemptive()
                .code("task_d_body();")
        })
        .build()
        .expect("figure 8 style example is a valid specification")
}

/// A compact non-preemptive sensor→filter→actuator pipeline used by the
/// quickstart example and the documentation.
///
/// # Examples
///
/// ```
/// let spec = ezrt_spec::corpus::small_control();
/// assert!(spec.total_instances() <= 8);
/// ```
pub fn small_control() -> EzSpec {
    SpecBuilder::new("small-control")
        .task("sense", |t| {
            t.computation(2)
                .deadline(8)
                .period(20)
                .code("adc_read(&sample);")
        })
        .task("filter", |t| {
            t.computation(3)
                .deadline(14)
                .period(20)
                .code("filter_update(&sample);")
        })
        .task("actuate", |t| {
            t.computation(2)
                .deadline(20)
                .period(20)
                .code("dac_write(output);")
        })
        .task("watchdog", |t| {
            t.computation(1).deadline(10).period(10).code("wdt_kick();")
        })
        .precedes("sense", "filter")
        .precedes("filter", "actuate")
        .excludes("sense", "actuate")
        .build()
        .expect("small control example is a valid specification")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedulingMethod;

    #[test]
    fn mine_pump_matches_table_1() {
        let spec = mine_pump();
        let expect = [
            ("PMC", 10u64, 20u64, 80u64),
            ("WFC", 15, 500, 500),
            ("RLWH", 1, 1000, 1000),
            ("CH4H", 25, 500, 500),
            ("CH4S", 5, 100, 500),
            ("COH", 15, 100, 2500),
            ("AFH", 15, 200, 6000),
            ("WFH", 15, 300, 500),
            ("PDL", 15, 500, 500),
            ("SDL", 10, 500, 500),
        ];
        assert_eq!(spec.task_count(), expect.len());
        for (name, c, d, p) in expect {
            let t = spec
                .task_by_name(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(t.timing().computation, c, "{name} computation");
            assert_eq!(t.timing().deadline, d, "{name} deadline");
            assert_eq!(t.timing().period, p, "{name} period");
            assert_eq!(t.timing().phase, 0, "{name}: all tasks arrive at time 0");
            assert_eq!(t.method(), SchedulingMethod::NonPreemptive);
        }
    }

    #[test]
    fn mine_pump_instance_counts_match_section_5() {
        let spec = mine_pump();
        assert_eq!(spec.hyperperiod(), 30_000);
        assert_eq!(spec.total_instances(), 782);
        assert_eq!(spec.instances_of(spec.task_id("PMC").unwrap()), 375);
        assert_eq!(spec.instances_of(spec.task_id("AFH").unwrap()), 5);
        assert_eq!(spec.instances_of(spec.task_id("COH").unwrap()), 12);
        assert_eq!(spec.instances_of(spec.task_id("RLWH").unwrap()), 30);
    }

    #[test]
    fn mine_pump_utilization_is_feasible() {
        let spec = mine_pump();
        let cpu = spec.processors().next().unwrap().0;
        let u = spec.utilization(cpu);
        assert!(u < 1.0, "utilization {u} must be below 1");
        assert!(u > 0.3, "Table 1 yields a busy system (PMC alone is 0.125)");
    }

    #[test]
    fn figure3_release_windows() {
        let spec = figure3_spec();
        assert_eq!(spec.hyperperiod(), 250);
        assert_eq!(spec.task_by_name("T1").unwrap().timing().latest_start(), 85);
        assert_eq!(
            spec.task_by_name("T2").unwrap().timing().latest_start(),
            130
        );
    }

    #[test]
    fn figure4_tasks_are_preemptive_with_exclusion() {
        let spec = figure4_spec();
        for (_, t) in spec.tasks() {
            assert_eq!(t.method(), SchedulingMethod::Preemptive);
        }
        let t0 = spec.task_id("T0").unwrap();
        let t2 = spec.task_id("T2").unwrap();
        assert!(spec.excludes(t0, t2));
        assert_eq!(spec.task(t0).timing().latest_start(), 90);
    }

    #[test]
    fn figure8_spec_is_schedulable_looking() {
        let spec = figure8_spec();
        let cpu = spec.processors().next().unwrap().0;
        assert!(spec.utilization(cpu) <= 1.0);
        // Hyperperiod: lcm(24, 12, 8, 24) = 24.
        assert_eq!(spec.hyperperiod(), 24);
        assert_eq!(spec.total_instances(), 1 + 2 + 3 + 1);
    }

    #[test]
    fn all_corpus_specs_validate() {
        for spec in [
            mine_pump(),
            figure3_spec(),
            figure4_spec(),
            figure8_spec(),
            small_control(),
        ] {
            assert!(spec.validate().is_ok(), "{} failed validation", spec.name());
        }
    }

    #[test]
    fn corpus_tasks_carry_behavioural_code_where_expected() {
        let spec = mine_pump();
        for (_, task) in spec.tasks() {
            assert!(task.code().is_some(), "{} has no code", task.name());
        }
    }
}
