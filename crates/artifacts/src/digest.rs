//! Canonical spec digests: stable FNV-1a 64+128 over
//! [`Project::canonical_bytes`](ezrt_core::Project::canonical_bytes).
//!
//! The digest is the cache key of the synthesis service and the join
//! key between `ezrt schedule --json`, `ezrt batch --json` and the
//! HTTP responses. Because the pre-image is the *parsed* specification
//! (plus the result-relevant scheduler knobs), any two XML documents
//! that differ only in whitespace, attribute order or escaping map to
//! the same digest; anything that can change the synthesis result maps
//! to a different one.
//!
//! FNV-1a is used because it is trivially stable: no per-process seed,
//! no platform dependence, the same 48 hex characters from any build
//! on any host. The 64-bit and 128-bit variants are computed over the
//! same stream and concatenated, so an accidental 64-bit collision
//! still yields distinct keys unless the 128-bit halves collide too.

use ezrt_core::Project;
use std::fmt;

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 192-bit content digest of a canonical spec serialization: the
/// FNV-1a/128 and FNV-1a/64 hashes of the same byte stream.
///
/// Renders as 48 lowercase hex characters (128-bit half first); the
/// rendered form is what appears in `spec_digest` JSON fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecDigest {
    fnv128: u128,
    fnv64: u64,
}

impl SpecDigest {
    /// Digests a canonical byte stream.
    pub fn of(bytes: &[u8]) -> SpecDigest {
        let mut h64 = FNV64_OFFSET;
        let mut h128 = FNV128_OFFSET;
        for &byte in bytes {
            h64 = (h64 ^ u64::from(byte)).wrapping_mul(FNV64_PRIME);
            h128 = (h128 ^ u128::from(byte)).wrapping_mul(FNV128_PRIME);
        }
        SpecDigest {
            fnv128: h128,
            fnv64: h64,
        }
    }

    /// The 64-bit half — used by the cache to route digests to shards.
    pub fn fnv64(&self) -> u64 {
        self.fnv64
    }

    /// The 128-bit half.
    pub fn fnv128(&self) -> u128 {
        self.fnv128
    }

    /// The 48-hex-character rendering (128-bit half, then 64-bit half).
    pub fn to_hex(&self) -> String {
        format!("{:032x}{:016x}", self.fnv128, self.fnv64)
    }

    /// Parses the 48-hex-character rendering back into a digest — the
    /// inverse of [`to_hex`](Self::to_hex). Returns `None` for anything
    /// that is not exactly 48 hex characters.
    pub fn from_hex(text: &str) -> Option<SpecDigest> {
        if text.len() != 48 || !text.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        Some(SpecDigest {
            fnv128: u128::from_str_radix(&text[..32], 16).ok()?,
            fnv64: u64::from_str_radix(&text[32..], 16).ok()?,
        })
    }

    /// Reassembles a digest from its two halves — the disk-cache codec's
    /// decode path. Pairs with [`fnv128`](Self::fnv128) and
    /// [`fnv64`](Self::fnv64).
    pub fn from_halves(fnv128: u128, fnv64: u64) -> SpecDigest {
        SpecDigest { fnv128, fnv64 }
    }
}

impl fmt::Display for SpecDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}{:016x}", self.fnv128, self.fnv64)
    }
}

/// The digest of a project's spec + scheduler configuration — the cache
/// key its synthesis result is stored under.
pub fn project_digest(project: &Project) -> SpecDigest {
    let _span = ezrt_obs::span("digest");
    SpecDigest::of(&project.canonical_bytes())
}

/// Per-task sub-digests, in specification order: `(task name, digest of
/// the task's canonical sub-stream)`. A task's sub-digest covers its own
/// timing and the *shape* of its relations (partners by name), so two
/// specs diff structurally by comparing these lists — a timing edit on
/// one task changes exactly that task's entry, and reordering tasks in
/// the XML changes none of them.
pub fn task_subdigests(project: &Project) -> Vec<(String, SpecDigest)> {
    project
        .task_canonical_bytes()
        .into_iter()
        .map(|(name, bytes)| (name, SpecDigest::of(&bytes)))
        .collect()
}

/// The digest of a project's *structure* — task set, relation shape,
/// per-task instance counts and the result-relevant config, timing
/// elided. Specs that differ only in task timing share this digest; the
/// server's nearest-ancestor index keys warm-start candidates on it.
pub fn structure_digest(project: &Project) -> SpecDigest {
    SpecDigest::of(&project.structure_bytes())
}

/// Renders sub-digests as the flat `name=hex,name=hex` form the JSON
/// report carries (flat-JSON surfaces have no nested objects).
pub fn format_task_subdigests(subdigests: &[(String, SpecDigest)]) -> String {
    let mut out = String::new();
    for (index, (name, digest)) in subdigests.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(name);
        out.push('=');
        out.push_str(&digest.to_hex());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezrt_scheduler::SchedulerConfig;
    use ezrt_spec::corpus::{mine_pump, small_control};
    use ezrt_tpn::DelayMode;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a of the empty input is the offset basis.
        let empty = SpecDigest::of(b"");
        assert_eq!(empty.fnv64(), FNV64_OFFSET);
        assert_eq!(empty.fnv128(), FNV128_OFFSET);
        // Published FNV-1a/64 test vector.
        assert_eq!(SpecDigest::of(b"a").fnv64(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn hex_is_48_lowercase_characters() {
        let hex = project_digest(&Project::new(small_control())).to_hex();
        assert_eq!(hex.len(), 48);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(hex, hex.to_lowercase());
        assert_eq!(
            hex,
            project_digest(&Project::new(small_control())).to_string()
        );
    }

    #[test]
    fn digest_is_stable_across_parses_and_whitespace() {
        let spec = small_control();
        let document = ezrt_dsl::to_xml(&spec);
        // Injecting whitespace between attributes / around tags leaves
        // the parsed spec — and therefore the digest — unchanged.
        let noisy = document
            .replace("><", ">\n\t <")
            .replace(" name=", "\n   name=");
        let original = Project::from_dsl(&document).expect("own dsl reloads");
        let reparsed = Project::from_dsl(&noisy).expect("noisy dsl reloads");
        assert_eq!(project_digest(&original), project_digest(&reparsed));
        assert_eq!(
            project_digest(&original),
            project_digest(&Project::new(spec))
        );
    }

    #[test]
    fn digest_separates_specs_and_configs() {
        let small = project_digest(&Project::new(small_control()));
        let pump = project_digest(&Project::new(mine_pump()));
        assert_ne!(small, pump);

        let full = Project::new(small_control()).with_config(SchedulerConfig {
            delay_mode: DelayMode::Full,
            ..SchedulerConfig::default()
        });
        assert_ne!(small, project_digest(&full));
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let digest = project_digest(&Project::new(small_control()));
        assert_eq!(SpecDigest::from_hex(&digest.to_hex()), Some(digest));
        assert_eq!(
            SpecDigest::from_halves(digest.fnv128(), digest.fnv64()),
            digest
        );
        assert_eq!(SpecDigest::from_hex(""), None);
        assert_eq!(SpecDigest::from_hex(&"0".repeat(47)), None);
        assert_eq!(SpecDigest::from_hex(&"g".repeat(48)), None);
    }

    #[test]
    fn jobs_do_not_change_the_digest() {
        let sequential = project_digest(&Project::new(small_control()));
        let parallel = project_digest(&Project::new(small_control()).with_jobs(8));
        assert_eq!(sequential, parallel);
    }
}
