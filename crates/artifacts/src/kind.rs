//! Artifact kinds: the closed set of outputs derivable from one
//! synthesis outcome, with a stable textual naming used by the CLI, the
//! HTTP artifact endpoints and the disk cache alike.

use ezrt_codegen::Target;
use std::fmt;

/// One renderable artifact kind.
///
/// The textual form (accepted by [`parse`](Self::parse), produced by
/// [`Display`](fmt::Display)) is the `<kind>` segment of the server's
/// `GET /v1/artifact/<digest>/<kind>` route:
///
/// | text | artifact |
/// |------|----------|
/// | `report-json`       | the `ezrt schedule --json` flat report |
/// | `table`             | the Fig. 8 schedule table as a C array |
/// | `codegen:<target>`  | the generated C translation unit (`codegen` alone means `codegen:posix_sim`) |
/// | `gantt`             | the ASCII timeline over the default window |
/// | `pnml`              | the synthesized net as ISO 15909-2 PNML |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// The flat-JSON synthesis report (works for infeasible outcomes
    /// too — it carries the `feasible: false` verdict).
    ReportJson,
    /// The schedule table rendered as the paper's Fig. 8 C array.
    Table,
    /// The complete generated C translation unit for one target.
    Codegen(Target),
    /// The ASCII Gantt chart over the canonical default window
    /// (`[0, min(120, hyperperiod))`, the CLI's no-argument window).
    Gantt,
    /// The synthesized time Petri net as PNML.
    Pnml,
}

impl ArtifactKind {
    /// Every kind in its default form, for sweeps and documentation
    /// (code generation is represented by its default target).
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::ReportJson,
        ArtifactKind::Table,
        ArtifactKind::Codegen(Target::PosixSim),
        ArtifactKind::Gantt,
        ArtifactKind::Pnml,
    ];

    /// Parses the textual kind name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the accepted kinds (and
    /// targets, for `codegen:<target>`) when `text` is not one of them.
    pub fn parse(text: &str) -> Result<ArtifactKind, String> {
        match text {
            "report-json" => Ok(ArtifactKind::ReportJson),
            "table" => Ok(ArtifactKind::Table),
            "gantt" => Ok(ArtifactKind::Gantt),
            "pnml" => Ok(ArtifactKind::Pnml),
            "codegen" => Ok(ArtifactKind::Codegen(Target::PosixSim)),
            _ => {
                if let Some(target) = text.strip_prefix("codegen:") {
                    let target = Target::ALL
                        .into_iter()
                        .find(|t| t.name() == target)
                        .ok_or_else(|| {
                            format!(
                                "unknown target {target:?} (expected one of {})",
                                Target::ALL.map(Target::name).join("|")
                            )
                        })?;
                    return Ok(ArtifactKind::Codegen(target));
                }
                Err(format!(
                    "unknown artifact kind {text:?} (expected report-json|table|codegen[:<target>]|gantt|pnml)"
                ))
            }
        }
    }

    /// The MIME content type the HTTP front end serves this kind under:
    /// the table and generated code are C source, the Gantt chart is
    /// plain text, the report is JSON, the net is XML (PNML).
    pub fn content_type(&self) -> &'static str {
        match self {
            ArtifactKind::ReportJson => "application/json",
            ArtifactKind::Table | ArtifactKind::Codegen(_) => "text/x-csrc; charset=utf-8",
            ArtifactKind::Gantt => "text/plain; charset=utf-8",
            ArtifactKind::Pnml => "application/xml",
        }
    }

    /// Whether rendering this kind requires a feasible schedule.
    /// Only the JSON report can be rendered from an infeasible outcome.
    pub fn requires_schedule(&self) -> bool {
        !matches!(self, ArtifactKind::ReportJson)
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactKind::ReportJson => write!(f, "report-json"),
            ArtifactKind::Table => write!(f, "table"),
            ArtifactKind::Codegen(target) => write!(f, "codegen:{}", target.name()),
            ArtifactKind::Gantt => write!(f, "gantt"),
            ArtifactKind::Pnml => write!(f, "pnml"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::parse(&kind.to_string()), Ok(kind));
        }
        for target in Target::ALL {
            let kind = ArtifactKind::Codegen(target);
            assert_eq!(ArtifactKind::parse(&kind.to_string()), Ok(kind));
        }
    }

    #[test]
    fn bare_codegen_defaults_to_the_posix_simulator() {
        assert_eq!(
            ArtifactKind::parse("codegen"),
            Ok(ArtifactKind::Codegen(Target::PosixSim))
        );
    }

    #[test]
    fn junk_kinds_and_targets_are_rejected_with_guidance() {
        let error = ArtifactKind::parse("sbom").expect_err("unknown kind");
        assert!(error.contains("report-json|table|codegen"), "{error}");
        let error = ArtifactKind::parse("codegen:z80").expect_err("unknown target");
        assert!(error.contains("unknown target"), "{error}");
        assert!(error.contains("posix_sim"), "{error}");
    }

    #[test]
    fn content_types_are_per_kind() {
        assert_eq!(ArtifactKind::ReportJson.content_type(), "application/json");
        assert_eq!(
            ArtifactKind::Table.content_type(),
            "text/x-csrc; charset=utf-8"
        );
        assert_eq!(
            ArtifactKind::Codegen(Target::I8051).content_type(),
            "text/x-csrc; charset=utf-8"
        );
        assert_eq!(
            ArtifactKind::Gantt.content_type(),
            "text/plain; charset=utf-8"
        );
        assert_eq!(ArtifactKind::Pnml.content_type(), "application/xml");
    }

    #[test]
    fn only_the_report_renders_without_a_schedule() {
        for kind in ArtifactKind::ALL {
            assert_eq!(
                kind.requires_schedule(),
                kind != ArtifactKind::ReportJson,
                "{kind}"
            );
        }
    }
}
