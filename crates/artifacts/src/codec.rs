//! The disk-cache codec: a versioned, length-prefixed, checksummed
//! byte format for [`SynthesisOutcome`] values.
//!
//! Only the irreducible results are serialized — the spec (as its
//! canonical XML DSL), the firing schedule (transition index + delay
//! per firing), the search counters and the pre-rendered report fields.
//! The derived structures (net, timeline, table) are rebuilt lazily on
//! the decode side, so a decoded outcome renders byte-identical
//! artifacts to the original (tested in `tests/roundtrip.rs`).
//!
//! File layout:
//!
//! ```text
//! magic     8 bytes   b"EZRTCHE\0"
//! version   u32 LE    FORMAT_VERSION
//! length    u64 LE    payload byte count
//! payload   …         the encoded outcome
//! checksum  u64 LE    FNV-1a/64 of the payload
//! ```
//!
//! Decoding is strict: a wrong magic, a stale version, a truncated
//! payload, a checksum mismatch or any malformed field yields an error
//! (never a partial outcome), and the disk tier treats every error the
//! same way — ignore the file and re-synthesize.

use crate::digest::SpecDigest;
use crate::outcome::{Solution, SynthesisOutcome};
use crate::report;
use ezrt_compose::translate;
use ezrt_scheduler::{FeasibleSchedule, ScheduledFiring, SearchStats};
use ezrt_tpn::TransitionId;
use std::fmt;
use std::time::Duration;

/// The on-disk magic prefix.
pub const MAGIC: &[u8; 8] = b"EZRTCHE\0";

/// The format version; bump on any encoding change so older files are
/// discarded (and re-synthesized) instead of misread. Version 2 added
/// the incremental-synthesis counters (`incr_*`) to the stats block and
/// the sub-digest report fields; version 3 added the partial-order
/// reduction counters (`por_*`).
pub const FORMAT_VERSION: u32 = 3;

/// Why a cache file could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The file ends before the declared length.
    Truncated,
    /// The magic prefix is not [`MAGIC`].
    BadMagic,
    /// The version tag differs from [`FORMAT_VERSION`].
    StaleVersion(u32),
    /// The payload checksum does not match its contents.
    BadChecksum,
    /// A structurally invalid payload (bad tag, unknown field key,
    /// out-of-range transition index, unparsable spec, …).
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated cache file"),
            CodecError::BadMagic => write!(f, "not an ezrt cache file (bad magic)"),
            CodecError::StaleVersion(found) => {
                write!(
                    f,
                    "stale format version {found} (expected {FORMAT_VERSION})"
                )
            }
            CodecError::BadChecksum => write!(f, "payload checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes `outcome` into a complete cache file (envelope + payload).
pub fn encode_file(outcome: &SynthesisOutcome) -> Vec<u8> {
    let payload = encode_payload(outcome);
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&SpecDigest::of(&payload).fnv64().to_le_bytes());
    out
}

/// Decodes a complete cache file back into an outcome.
///
/// # Errors
///
/// Returns the specific [`CodecError`]; callers that only need the
/// ignore-and-resynthesize behaviour can treat every variant alike.
pub fn decode_file(bytes: &[u8]) -> Result<SynthesisOutcome, CodecError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CodecError::Truncated);
    }
    let (magic, rest) = bytes.split_at(MAGIC.len());
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let (version, rest) = rest.split_at(4);
    let version = u32::from_le_bytes(version.try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CodecError::StaleVersion(version));
    }
    let (length, rest) = rest.split_at(8);
    let length = u64::from_le_bytes(length.try_into().expect("8 bytes")) as usize;
    if rest.len() < length + 8 {
        return Err(CodecError::Truncated);
    }
    let (payload, tail) = rest.split_at(length);
    let checksum = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
    if SpecDigest::of(payload).fnv64() != checksum {
        return Err(CodecError::BadChecksum);
    }
    decode_payload(payload)
}

fn encode_payload(outcome: &SynthesisOutcome) -> Vec<u8> {
    let mut w = Writer::default();
    w.u128(outcome.digest.fnv128());
    w.u64(outcome.digest.fnv64());
    w.u8(u8::from(outcome.feasible));
    w.u8(match outcome.replay_ok {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
    w.opt_str(outcome.error.as_deref());

    w.u32(outcome.fields.len() as u32);
    for (key, value) in &outcome.fields {
        w.str(key);
        w.str(value);
    }

    let stats = &outcome.stats;
    w.u64(stats.states_visited as u64);
    w.u64(stats.schedule_length as u64);
    w.u64(stats.minimum_firings);
    w.u64(stats.backtracks as u64);
    w.u64(stats.pruned_misses as u64);
    w.u64(stats.pruned_dead as u64);
    w.u64(stats.deadlocks as u64);
    w.u64(stats.dead_states as u64);
    w.u64(stats.dead_set_bytes as u64);
    w.u128(stats.elapsed.as_nanos());
    w.u64(stats.jobs as u64);
    w.u64(stats.steals as u64);
    w.u64(stats.incr_seed_hits as u64);
    w.u64(stats.incr_replayed as u64);
    w.u64(stats.incr_states_saved as u64);
    w.u64(stats.por_stubborn_skips as u64);
    w.u64(stats.por_sleep_skips as u64);
    w.u64(stats.por_overlap_skips as u64);

    match &outcome.solution {
        None => w.u8(0),
        Some(solution) => {
            w.u8(1);
            w.str(&ezrt_dsl::to_xml(solution.spec()));
            let firings = solution.schedule().firings();
            w.u32(firings.len() as u32);
            for firing in firings {
                w.u32(firing.transition.index() as u32);
                w.u64(firing.delay);
            }
        }
    }
    w.bytes
}

fn decode_payload(payload: &[u8]) -> Result<SynthesisOutcome, CodecError> {
    let mut r = Reader { bytes: payload };
    let digest = SpecDigest::from_halves(r.u128()?, r.u64()?);
    let feasible = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(malformed(format!("feasible flag {other}"))),
    };
    let replay_ok = match r.u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        other => return Err(malformed(format!("replay verdict {other}"))),
    };
    let error = r.opt_str()?;

    let field_count = r.u32()? as usize;
    let mut fields = Vec::with_capacity(field_count.min(64));
    for _ in 0..field_count {
        let key = r.str()?;
        let key = report::static_key(&key)
            .ok_or_else(|| malformed(format!("unknown field key {key:?}")))?;
        fields.push((key, r.str()?));
    }

    let stats = SearchStats {
        states_visited: r.u64()? as usize,
        schedule_length: r.u64()? as usize,
        minimum_firings: r.u64()?,
        backtracks: r.u64()? as usize,
        pruned_misses: r.u64()? as usize,
        pruned_dead: r.u64()? as usize,
        deadlocks: r.u64()? as usize,
        dead_states: r.u64()? as usize,
        dead_set_bytes: r.u64()? as usize,
        elapsed: duration_from_nanos(r.u128()?),
        jobs: r.u64()? as usize,
        steals: r.u64()? as usize,
        incr_seed_hits: r.u64()? as usize,
        incr_replayed: r.u64()? as usize,
        incr_states_saved: r.u64()? as usize,
        por_stubborn_skips: r.u64()? as usize,
        por_sleep_skips: r.u64()? as usize,
        por_overlap_skips: r.u64()? as usize,
    };

    let solution = match r.u8()? {
        0 => None,
        1 => {
            let document = r.str()?;
            let spec = ezrt_dsl::from_xml(&document)
                .map_err(|e| malformed(format!("embedded spec: {e}")))?;
            // Roles and absolute times are deterministic functions of
            // the translated net and the delay sequence, so only
            // (transition, delay) pairs are stored.
            let tasknet = translate(&spec);
            let transition_count = tasknet.net().transition_count();
            let firing_count = r.u32()? as usize;
            let mut firings = Vec::with_capacity(firing_count.min(1 << 16));
            let mut at = 0u64;
            for _ in 0..firing_count {
                let index = r.u32()? as usize;
                if index >= transition_count {
                    return Err(malformed(format!("transition index {index}")));
                }
                let delay = r.u64()?;
                at = at
                    .checked_add(delay)
                    .ok_or_else(|| malformed("firing time overflow".to_owned()))?;
                let transition = TransitionId::from_index(index);
                firings.push(ScheduledFiring {
                    transition,
                    role: tasknet.role(transition),
                    delay,
                    at,
                });
            }
            let schedule = FeasibleSchedule::from_firings(firings);
            // The checksum only guards against accidental corruption;
            // feasibility is re-established semantically: the decoded
            // schedule must replay cleanly through the net-semantics
            // oracle, so no byte pattern can revive an infeasible
            // "feasible" outcome into rendered tables or C code.
            ezrt_sim::replay::replay(&tasknet, &schedule)
                .map_err(|error| malformed(format!("schedule fails replay: {error}")))?;
            Some(Solution::new(spec, schedule))
        }
        other => return Err(malformed(format!("solution flag {other}"))),
    };
    if feasible != solution.is_some() {
        return Err(malformed("feasible flag contradicts solution".to_owned()));
    }
    if !r.bytes.is_empty() {
        return Err(malformed(format!("{} trailing bytes", r.bytes.len())));
    }
    Ok(SynthesisOutcome {
        digest,
        feasible,
        error,
        fields,
        stats,
        replay_ok,
        solution,
    })
}

fn malformed(what: String) -> CodecError {
    CodecError::Malformed(what)
}

fn duration_from_nanos(nanos: u128) -> Duration {
    let secs = (nanos / 1_000_000_000) as u64;
    let subsec = (nanos % 1_000_000_000) as u32;
    Duration::new(secs, subsec)
}

#[derive(Default)]
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, value: u8) {
        self.bytes.push(value);
    }
    fn u32(&mut self, value: u32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }
    fn u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }
    fn u128(&mut self, value: u128) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }
    fn str(&mut self, text: &str) {
        self.u32(text.len() as u32);
        self.bytes.extend_from_slice(text.as_bytes());
    }
    fn opt_str(&mut self, text: Option<&str>) {
        match text {
            None => self.u8(0),
            Some(text) => {
                self.u8(1);
                self.str(text);
            }
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl Reader<'_> {
    fn take(&mut self, count: usize) -> Result<&[u8], CodecError> {
        if self.bytes.len() < count {
            return Err(CodecError::Truncated);
        }
        let (taken, rest) = self.bytes.split_at(count);
        self.bytes = rest;
        Ok(taken)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }
    fn str(&mut self) -> Result<String, CodecError> {
        let length = self.u32()? as usize;
        String::from_utf8(self.take(length)?.to_vec())
            .map_err(|_| malformed("non-UTF-8 string".to_owned()))
    }
    fn opt_str(&mut self) -> Result<Option<String>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(malformed(format!("option flag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::project_digest;
    use crate::outcome::compute_outcome;
    use ezrt_core::Project;
    use ezrt_spec::corpus::small_control;

    fn encoded_small_control() -> (SynthesisOutcome, Vec<u8>) {
        let project = Project::new(small_control());
        let outcome = compute_outcome(&project, project_digest(&project));
        let bytes = encode_file(&outcome);
        (outcome, bytes)
    }

    #[test]
    fn outcomes_round_trip() {
        let (original, bytes) = encoded_small_control();
        let decoded = decode_file(&bytes).expect("decodes");
        assert_eq!(decoded.digest, original.digest);
        assert_eq!(decoded.feasible, original.feasible);
        assert_eq!(decoded.error, original.error);
        assert_eq!(decoded.fields, original.fields);
        assert_eq!(decoded.stats, original.stats);
        assert_eq!(decoded.replay_ok, original.replay_ok);
        let (a, b) = (
            original.solution.as_ref().unwrap(),
            decoded.solution.as_ref().unwrap(),
        );
        assert_eq!(a.spec(), b.spec());
        assert_eq!(a.schedule(), b.schedule());
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let (_, bytes) = encoded_small_control();
        // Every strict prefix fails — never panics, never half-decodes.
        for cut in [0, 7, 8, 12, 19, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_file(&bytes[..cut]).is_err(), "prefix of {cut}");
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_are_distinct_errors() {
        let (_, bytes) = encoded_small_control();
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(decode_file(&bad_magic).err(), Some(CodecError::BadMagic));

        let mut stale = bytes.clone();
        stale[8] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            decode_file(&stale),
            Err(CodecError::StaleVersion(_))
        ));

        let mut corrupt = bytes.clone();
        let mid = 20 + (bytes.len() - 28) / 2;
        corrupt[mid] ^= 0xff;
        assert_eq!(decode_file(&corrupt).err(), Some(CodecError::BadChecksum));
    }

    #[test]
    fn a_valid_envelope_with_a_bogus_schedule_fails_the_replay_gate() {
        use crate::outcome::Solution;
        use ezrt_compose::TransitionRole;
        use ezrt_scheduler::ScheduledFiring;
        use ezrt_tpn::TransitionId;

        // A structurally valid file (correct magic/version/checksum)
        // whose embedded schedule is semantically nonsense must still
        // be rejected — the replay oracle, not the checksum, is the
        // feasibility gate.
        let (original, _) = encoded_small_control();
        let spec = original.solution.as_ref().unwrap().spec().clone();
        let bogus = SynthesisOutcome {
            digest: original.digest,
            feasible: true,
            error: None,
            fields: original.fields.clone(),
            stats: original.stats.clone(),
            replay_ok: Some(true),
            solution: Some(Solution::new(
                spec,
                FeasibleSchedule::from_firings(vec![ScheduledFiring {
                    transition: TransitionId::from_index(0),
                    role: TransitionRole::Fork,
                    delay: 999,
                    at: 999,
                }]),
            )),
        };
        let error = decode_file(&encode_file(&bogus)).expect_err("replay gate rejects");
        assert!(
            matches!(&error, CodecError::Malformed(what) if what.contains("replay")),
            "{error}"
        );
    }

    #[test]
    fn infeasible_outcomes_round_trip_without_a_solution() {
        use ezrt_spec::SpecBuilder;
        let overload = SpecBuilder::new("overload")
            .task("x", |t| t.computation(3).deadline(4).period(4))
            .task("y", |t| t.computation(2).deadline(4).period(4))
            .build()
            .unwrap();
        let project = Project::new(overload);
        let outcome = compute_outcome(&project, project_digest(&project));
        let decoded = decode_file(&encode_file(&outcome)).expect("decodes");
        assert!(!decoded.feasible);
        assert_eq!(decoded.error, outcome.error);
        assert!(decoded.solution.is_none());
        assert_eq!(decoded.fields, outcome.fields);
    }
}
