//! The cached unit of work: one synthesis run packaged so that **every**
//! downstream artifact — report JSON, schedule table, generated C,
//! Gantt, PNML — can be rendered from it without re-searching.
//!
//! A [`SynthesisOutcome`] keeps only the *irreducible* results (the
//! parsed spec, the feasible firing schedule, the search counters and
//! the pre-rendered report fields); everything else — the translated
//! net, the execution timeline, the Fig. 8 table — is a deterministic
//! function of spec + schedule and is re-derived lazily on first
//! artifact render (`Solution::derived`). That is what makes the type
//! disk-persistable: the codec serializes spec + schedule, and a
//! decoded outcome renders byte-identical artifacts by construction.

use crate::digest::SpecDigest;
use crate::report::{self, JsonFields};
use ezrt_codegen::ScheduleTable;
use ezrt_compose::{translate, TaskNet};
use ezrt_core::Project;
use ezrt_scheduler::{FeasibleSchedule, SearchStats, Timeline};
use ezrt_spec::EzSpec;
use std::sync::OnceLock;

/// Everything one synthesis run produced, cached under its digest: the
/// feasible solution (when one exists), the search statistics, the
/// replay verdict of the net-semantics oracle, and the pre-rendered
/// flat-JSON report fields every surface serves.
#[derive(Debug)]
pub struct SynthesisOutcome {
    /// The digest this outcome is keyed under.
    pub digest: SpecDigest,
    /// Whether a feasible schedule was found.
    pub feasible: bool,
    /// The synthesis error text when infeasible (`None` when feasible).
    pub error: Option<String>,
    /// The shared flat-JSON field list (`ezrt schedule --json` plus
    /// `spec_digest`); the server appends its `cache` field per
    /// response, so cached bodies stay byte-identical per lookup kind.
    pub fields: JsonFields,
    /// The search counters of the run that produced this outcome.
    pub stats: SearchStats,
    /// `Some(true)` when the schedule replayed cleanly through the
    /// `ezrt_sim::replay` net-semantics oracle, `Some(false)` when it
    /// did not (a kernel bug), `None` for infeasible outcomes.
    pub replay_ok: Option<bool>,
    /// The feasible solution — spec + schedule, plus lazily re-derived
    /// net/timeline/table — that schedule-dependent artifacts render
    /// from. `None` for infeasible outcomes.
    pub solution: Option<Solution>,
}

/// A feasible solution: the parsed specification and the firing
/// schedule, with the derived structures (translated net, timeline,
/// schedule table) materialized on first use and shared afterwards.
#[derive(Debug)]
pub struct Solution {
    spec: EzSpec,
    schedule: FeasibleSchedule,
    derived: OnceLock<Derived>,
}

/// Structures deterministically derivable from spec + schedule.
#[derive(Debug)]
pub(crate) struct Derived {
    pub(crate) tasknet: TaskNet,
    pub(crate) timeline: Timeline,
    pub(crate) table: ScheduleTable,
}

impl Solution {
    /// Wraps a spec + schedule pair; derived structures materialize on
    /// first artifact render. This is the decode path of the disk cache.
    pub fn new(spec: EzSpec, schedule: FeasibleSchedule) -> Solution {
        Solution {
            spec,
            schedule,
            derived: OnceLock::new(),
        }
    }

    pub(crate) fn with_derived(
        spec: EzSpec,
        schedule: FeasibleSchedule,
        derived: Derived,
    ) -> Solution {
        let cell = OnceLock::new();
        let _ = cell.set(derived);
        Solution {
            spec,
            schedule,
            derived: cell,
        }
    }

    /// The parsed specification.
    pub fn spec(&self) -> &EzSpec {
        &self.spec
    }

    /// The feasible firing schedule.
    pub fn schedule(&self) -> &FeasibleSchedule {
        &self.schedule
    }

    pub(crate) fn derived(&self) -> &Derived {
        self.derived.get_or_init(|| {
            let tasknet = translate(&self.spec);
            let timeline = Timeline::from_schedule(&tasknet, &self.schedule);
            let table = ScheduleTable::from_timeline(&self.spec, &timeline);
            Derived {
                tasknet,
                timeline,
                table,
            }
        })
    }

    /// The ASCII Gantt chart of the window `[from, to)` — the windowed
    /// variant behind the CLI's explicit `ezrt gantt spec.xml from to`
    /// form (the canonical `gantt` artifact uses the default window).
    pub fn gantt_window(&self, from: u64, to: u64) -> String {
        let derived = self.derived();
        derived.timeline.gantt(&derived.tasknet, from, to)
    }

    /// Re-checks the derived timeline against the specification with
    /// the net-independent validator; empty means valid. This is how a
    /// caller holding only a cached outcome (the CLI's human `schedule`
    /// report, say) can show *which* constraints a nonzero `violations`
    /// count refers to.
    pub fn validate(&self) -> Vec<ezrt_scheduler::validate::ScheduleViolation> {
        ezrt_scheduler::validate::check(&self.spec, &self.derived().timeline)
    }
}

/// Runs the synthesis for `project` and packages the result for the
/// cache: search, spec-level validation (the `violations` field),
/// net-level replay verdict, rendered JSON fields, and the solution the
/// artifact renderers consume.
pub fn compute_outcome(project: &Project, digest: SpecDigest) -> SynthesisOutcome {
    package(project, digest, project.synthesize())
}

/// [`compute_outcome`] warm-started from an `ancestor` outcome: the
/// ancestor's schedule prefix seeds the search through
/// [`Project::synthesize_incremental`], and
/// [`SearchStats::incr_states_saved`] is filled in from the ancestor's
/// own state count before the report fields render. Ancestors without a
/// feasible solution have nothing to seed with and fall back to a cold
/// [`compute_outcome`].
pub fn compute_outcome_incremental(
    project: &Project,
    digest: SpecDigest,
    ancestor: &SynthesisOutcome,
) -> SynthesisOutcome {
    let Some(prev) = ancestor.solution.as_ref() else {
        return compute_outcome(project, digest);
    };
    let mut result = project.synthesize_incremental(prev.schedule());
    if let Ok(outcome) = result.as_mut() {
        if outcome.stats.incr_seed_hits > 0 {
            outcome.stats.incr_states_saved = ancestor
                .stats
                .states_visited
                .saturating_sub(outcome.stats.states_visited);
        }
    }
    package(project, digest, result)
}

/// Packages a synthesis verdict for the cache.
fn package(
    project: &Project,
    digest: SpecDigest,
    result: Result<ezrt_core::Outcome, ezrt_scheduler::SynthesizeError>,
) -> SynthesisOutcome {
    match result {
        Ok(outcome) => {
            let replay_ok = ezrt_sim::replay::replay(&outcome.tasknet, &outcome.schedule).is_ok();
            let fields = report::success_fields(&digest, project, &outcome);
            let parts = outcome.into_parts();
            SynthesisOutcome {
                digest,
                feasible: true,
                error: None,
                fields,
                stats: parts.stats.clone(),
                replay_ok: Some(replay_ok),
                solution: Some(Solution::with_derived(
                    parts.spec,
                    parts.schedule,
                    Derived {
                        tasknet: parts.tasknet,
                        timeline: parts.timeline,
                        table: parts.table,
                    },
                )),
            }
        }
        Err(error) => SynthesisOutcome {
            digest,
            feasible: false,
            error: Some(error.to_string()),
            fields: report::failure_fields(&digest, &error),
            stats: error.stats().clone(),
            replay_ok: None,
            solution: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::project_digest;
    use ezrt_spec::corpus::small_control;
    use ezrt_spec::SpecBuilder;

    #[test]
    fn compute_outcome_packages_success_and_failure() {
        use ezrt_scheduler::SchedulerConfig;

        let project = Project::new(small_control());
        let digest = project_digest(&project);
        let outcome = compute_outcome(&project, digest);
        assert!(outcome.feasible);
        assert_eq!(outcome.error, None);
        assert_eq!(outcome.replay_ok, Some(true));
        assert!(outcome.solution.is_some());
        assert_eq!(outcome.fields[0], ("feasible", "true".to_owned()));

        let overload = SpecBuilder::new("overload")
            .task("x", |t| t.computation(3).deadline(4).period(4))
            .task("y", |t| t.computation(2).deadline(4).period(4))
            .build()
            .unwrap();
        let project = Project::new(overload);
        let digest = project_digest(&project);
        let outcome = compute_outcome(&project, digest);
        assert!(!outcome.feasible);
        assert!(outcome
            .error
            .as_deref()
            .is_some_and(|e| e.contains("no feasible schedule")));
        assert_eq!(outcome.replay_ok, None);
        assert!(outcome.solution.is_none());
        let config_digest =
            project_digest(&Project::new(small_control()).with_config(SchedulerConfig {
                max_states: 1,
                ..SchedulerConfig::default()
            }));
        assert_ne!(digest, config_digest);
    }

    #[test]
    fn lazily_derived_solution_matches_the_seeded_one() {
        let project = Project::new(small_control());
        let digest = project_digest(&project);
        let computed = compute_outcome(&project, digest);
        let seeded = computed.solution.as_ref().expect("feasible");
        let lazy = Solution::new(seeded.spec().clone(), seeded.schedule().clone());
        assert_eq!(
            seeded.derived().table.to_c_array(),
            lazy.derived().table.to_c_array()
        );
        assert_eq!(seeded.gantt_window(0, 20), lazy.gantt_window(0, 20));
    }
}
