//! Rendering: `(SynthesisOutcome, ArtifactKind) → bytes`, the one code
//! path behind `ezrt table|codegen|gantt|pnml|schedule --json`, the
//! HTTP artifact endpoints and the batch rows.
//!
//! Rendering is a **pure function** of the outcome: two calls with the
//! same outcome and kind produce identical bytes, and an outcome that
//! round-trips through the disk-cache codec renders the same bytes as
//! the freshly computed one (the derived net/timeline/table are
//! deterministic functions of spec + schedule). The byte formats are
//! exactly what the CLI has always printed, so switching the CLI onto
//! this layer changed no output.

use crate::kind::ArtifactKind;
use crate::outcome::SynthesisOutcome;
use crate::report;
use ezrt_codegen::CodeGenerator;
use std::fmt;

/// One rendered artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// The kind that was rendered.
    pub kind: ArtifactKind,
    /// The MIME content type (from [`ArtifactKind::content_type`]).
    pub content_type: &'static str,
    /// The rendered bytes. Always valid UTF-8 — every artifact is text.
    pub text: String,
}

/// Why an artifact could not be rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// The outcome holds no feasible schedule, and the requested kind
    /// needs one (everything except `report-json`).
    Infeasible {
        /// The synthesis error text recorded in the outcome.
        error: Option<String>,
    },
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::Infeasible { error } => write!(
                f,
                "schedule synthesis failed: {}",
                error.as_deref().unwrap_or("no feasible schedule")
            ),
        }
    }
}

impl std::error::Error for RenderError {}

/// The default Gantt window for a hyperperiod: `[0, min(120, H))`,
/// never empty — the CLI's historical no-argument window.
pub fn default_gantt_window(hyperperiod: u64) -> (u64, u64) {
    (0, 120.min(hyperperiod.max(1)))
}

/// Renders `kind` from `outcome`.
///
/// # Errors
///
/// Returns [`RenderError::Infeasible`] when the kind requires a
/// feasible schedule and the outcome has none. `report-json` always
/// renders (it carries the failure verdict itself).
pub fn render(outcome: &SynthesisOutcome, kind: ArtifactKind) -> Result<Artifact, RenderError> {
    let _span = ezrt_obs::span("render");
    let text = match kind {
        ArtifactKind::ReportJson => {
            let mut text = report::render_pretty(&outcome.fields);
            text.push('\n');
            text
        }
        schedule_kind => {
            let Some(solution) = outcome.solution.as_ref() else {
                return Err(RenderError::Infeasible {
                    error: outcome.error.clone(),
                });
            };
            let derived = solution.derived();
            match schedule_kind {
                ArtifactKind::ReportJson => unreachable!("handled above"),
                ArtifactKind::Table => derived.table.to_c_array(),
                ArtifactKind::Codegen(target) => {
                    let code = CodeGenerator::new(target).generate(solution.spec(), &derived.table);
                    format!(
                        "/* ===== {} ===== */\n{}\n/* ===== {} ===== */\n{}\n",
                        code.header_name, code.header, code.source_name, code.source
                    )
                }
                ArtifactKind::Gantt => {
                    let (from, to) = default_gantt_window(solution.spec().hyperperiod());
                    derived.timeline.gantt(&derived.tasknet, from, to)
                }
                ArtifactKind::Pnml => {
                    let mut text = ezrt_pnml::to_pnml(derived.tasknet.net());
                    text.push('\n');
                    text
                }
            }
        }
    };
    Ok(Artifact {
        kind,
        content_type: kind.content_type(),
        text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::project_digest;
    use crate::outcome::compute_outcome;
    use ezrt_core::Project;
    use ezrt_spec::corpus::small_control;
    use ezrt_spec::SpecBuilder;

    fn feasible_outcome() -> SynthesisOutcome {
        let project = Project::new(small_control());
        let digest = project_digest(&project);
        compute_outcome(&project, digest)
    }

    #[test]
    fn rendering_is_pure() {
        let outcome = feasible_outcome();
        for kind in ArtifactKind::ALL {
            let first = render(&outcome, kind).expect("renders");
            let second = render(&outcome, kind).expect("renders");
            assert_eq!(first, second, "{kind}");
            assert!(!first.text.is_empty(), "{kind}");
            assert_eq!(first.content_type, kind.content_type());
        }
    }

    #[test]
    fn rendered_shapes_match_their_kinds() {
        let outcome = feasible_outcome();
        let table = render(&outcome, ArtifactKind::Table).unwrap().text;
        assert!(table.starts_with("struct ScheduleItem scheduleTable"));
        let code = render(&outcome, ArtifactKind::Codegen(ezrt_codegen::Target::I8051))
            .unwrap()
            .text;
        assert!(code.contains("__interrupt(1)"));
        assert!(code.starts_with("/* ===== ezrt_schedule.h ===== */\n"));
        let gantt = render(&outcome, ArtifactKind::Gantt).unwrap().text;
        assert!(gantt.contains('#'));
        let pnml = render(&outcome, ArtifactKind::Pnml).unwrap().text;
        assert!(ezrt_pnml::from_pnml(&pnml).is_ok());
        assert!(pnml.ends_with('\n'));
        let report = render(&outcome, ArtifactKind::ReportJson).unwrap().text;
        assert!(report.starts_with("{\n") && report.ends_with("}\n"));
        assert!(report.contains("\"feasible\": true"));
    }

    #[test]
    fn infeasible_outcomes_render_only_the_report() {
        let overload = SpecBuilder::new("overload")
            .task("x", |t| t.computation(3).deadline(4).period(4))
            .task("y", |t| t.computation(2).deadline(4).period(4))
            .build()
            .unwrap();
        let project = Project::new(overload);
        let outcome = compute_outcome(&project, project_digest(&project));
        let report = render(&outcome, ArtifactKind::ReportJson).expect("report renders");
        assert!(report.text.contains("\"feasible\": false"));
        for kind in ArtifactKind::ALL
            .into_iter()
            .filter(|k| k.requires_schedule())
        {
            let error = render(&outcome, kind).expect_err("needs a schedule");
            assert!(
                error.to_string().contains("no feasible schedule"),
                "{kind}: {error}"
            );
        }
    }

    #[test]
    fn default_gantt_window_is_never_empty() {
        assert_eq!(default_gantt_window(0), (0, 1));
        assert_eq!(default_gantt_window(20), (0, 20));
        assert_eq!(default_gantt_window(2000), (0, 120));
    }
}
