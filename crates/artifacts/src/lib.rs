//! The ezRealtime **artifact layer**: every output derivable from one
//! synthesis — the flat-JSON report, the Fig. 8 schedule table, the
//! generated C translation unit, the ASCII Gantt chart, the PNML
//! export — rendered as a pure function of `(SynthesisOutcome,
//! ArtifactKind)`.
//!
//! The paper's pipeline (Fig. 6) makes one feasible firing schedule
//! the source of every downstream artifact. This crate is that
//! property turned into an architecture:
//!
//! * [`digest`] — the stable FNV-1a 64+128 spec digest (the
//!   content-address every artifact is keyed under);
//! * [`outcome`] — [`SynthesisOutcome`]: one synthesis run packaged
//!   with its spec + schedule so any artifact can be re-rendered
//!   without re-searching ([`compute_outcome`] produces it,
//!   [`Solution`] lazily re-derives net/timeline/table);
//! * [`kind`] — [`ArtifactKind`]: the closed set of artifact kinds and
//!   their stable textual names (`report-json`, `table`,
//!   `codegen:<target>`, `gantt`, `pnml`);
//! * [`render`](mod@render) — [`render()`](render()): the one rendering code path
//!   shared by the CLI (`ezrt table|codegen|gantt|pnml`), the HTTP
//!   artifact endpoints and batch mode, so all surfaces emit
//!   byte-identical artifacts for one digest;
//! * [`report`] — the flat-JSON field rendering shared by `ezrt
//!   schedule --json`, batch rows and `/v1/schedule` bodies;
//! * [`codec`] — the versioned, length-prefixed, checksummed byte
//!   format `ezrt-server`'s disk cache tier persists outcomes in.
//!
//! # Examples
//!
//! ```
//! use ezrt_artifacts::{compute_outcome, project_digest, render, ArtifactKind};
//! use ezrt_core::Project;
//! use ezrt_spec::corpus::small_control;
//!
//! let project = Project::new(small_control());
//! let digest = project_digest(&project);
//! let outcome = compute_outcome(&project, digest);
//!
//! let table = render(&outcome, ArtifactKind::Table).expect("feasible");
//! assert!(table.text.starts_with("struct ScheduleItem scheduleTable"));
//!
//! // Rendering is pure: a decoded disk-cache entry renders the same bytes.
//! let reloaded = ezrt_artifacts::codec::decode_file(&ezrt_artifacts::codec::encode_file(&outcome))
//!     .expect("round-trips");
//! assert_eq!(render(&reloaded, ArtifactKind::Table).unwrap().text, table.text);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod digest;
pub mod kind;
pub mod outcome;
pub mod render;
pub mod report;

pub use digest::{
    format_task_subdigests, project_digest, structure_digest, task_subdigests, SpecDigest,
};
pub use kind::ArtifactKind;
pub use outcome::{compute_outcome, compute_outcome_incremental, Solution, SynthesisOutcome};
pub use render::{default_gantt_window, render, Artifact, RenderError};
