//! The flat-JSON report shared by `ezrt schedule --json`, `ezrt batch
//! --json` and the HTTP `/v1/schedule` responses.
//!
//! All three surfaces render the *same* ordered field list (hand-rolled
//! JSON — the workspace builds offline, without serde), so their
//! outputs are byte-identical where they overlap and join-able by the
//! `spec_digest` field. The server appends one extra `cache` field and
//! batch mode prepends a `file` field; everything in between is shared.

use crate::digest::{format_task_subdigests, structure_digest, task_subdigests, SpecDigest};
use ezrt_core::{Outcome, Project};
use ezrt_scheduler::SynthesizeError;

/// An ordered list of `(key, rendered JSON value)` pairs — the one flat
/// object every surface prints. Values are pre-rendered JSON fragments
/// (`"true"`, `"42"`, `"\"text\""`), so rendering is pure concatenation.
pub type JsonFields = Vec<(&'static str, String)>;

/// Renders `text` as a JSON string literal (quoted and escaped).
pub fn json_string(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len() + 2);
    escaped.push('"');
    for c in text.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped.push('"');
    escaped
}

/// The field list for a successful synthesis: the `ezrt schedule
/// --json` contract (one flat object, search counters included), plus
/// the digest keys. `violations` re-checks the timeline against the
/// specification with the net-independent validator;
/// `structure_digest` and the flat `task_subdigests` map let external
/// tools diff two specs structurally without re-implementing
/// canonicalization; the `incr_*` counters describe the warm start that
/// produced the result (all zero on cold runs).
pub fn success_fields(digest: &SpecDigest, project: &Project, outcome: &Outcome) -> JsonFields {
    let stats = &outcome.stats;
    let violations = outcome.validate().len();
    vec![
        ("feasible", "true".to_owned()),
        ("spec_digest", json_string(&digest.to_hex())),
        (
            "structure_digest",
            json_string(&structure_digest(project).to_hex()),
        ),
        (
            "task_subdigests",
            json_string(&format_task_subdigests(&task_subdigests(project))),
        ),
        ("firings", outcome.schedule.firings().len().to_string()),
        ("makespan", outcome.schedule.makespan().to_string()),
        ("states_visited", stats.states_visited.to_string()),
        ("minimum_states", stats.minimum_states().to_string()),
        ("overhead_ratio", format!("{:.6}", stats.overhead_ratio())),
        ("backtracks", stats.backtracks.to_string()),
        ("pruned_misses", stats.pruned_misses.to_string()),
        ("pruned_dead", stats.pruned_dead.to_string()),
        ("dead_states", stats.dead_states.to_string()),
        ("peak_dead_set_bytes", stats.dead_set_bytes.to_string()),
        (
            "states_per_second",
            format!("{:.1}", stats.states_per_second()),
        ),
        (
            "wall_time_ms",
            format!("{:.3}", stats.elapsed.as_secs_f64() * 1e3),
        ),
        ("jobs", stats.jobs.to_string()),
        ("steals", stats.steals.to_string()),
        ("incr_seed_hits", stats.incr_seed_hits.to_string()),
        ("incr_replayed", stats.incr_replayed.to_string()),
        ("incr_states_saved", stats.incr_states_saved.to_string()),
        ("por_stubborn_skips", stats.por_stubborn_skips.to_string()),
        ("por_sleep_skips", stats.por_sleep_skips.to_string()),
        ("por_overlap_skips", stats.por_overlap_skips.to_string()),
        ("violations", violations.to_string()),
    ]
}

/// The field list for a failed synthesis: `feasible: false`, the error
/// text and the search counters gathered before the failure.
pub fn failure_fields(digest: &SpecDigest, error: &SynthesizeError) -> JsonFields {
    let stats = error.stats();
    vec![
        ("feasible", "false".to_owned()),
        ("spec_digest", json_string(&digest.to_hex())),
        ("error", json_string(&error.to_string())),
        ("states_visited", stats.states_visited.to_string()),
        ("dead_states", stats.dead_states.to_string()),
        ("peak_dead_set_bytes", stats.dead_set_bytes.to_string()),
        (
            "states_per_second",
            format!("{:.1}", stats.states_per_second()),
        ),
        (
            "wall_time_ms",
            format!("{:.3}", stats.elapsed.as_secs_f64() * 1e3),
        ),
        ("jobs", stats.jobs.to_string()),
        ("steals", stats.steals.to_string()),
        ("por_stubborn_skips", stats.por_stubborn_skips.to_string()),
        ("por_sleep_skips", stats.por_sleep_skips.to_string()),
        ("por_overlap_skips", stats.por_overlap_skips.to_string()),
    ]
}

/// Every field key the outcome renderers above can emit, as `'static`
/// strings. The disk-cache codec decodes keys through this table so a
/// persisted [`JsonFields`] list can be rebuilt without leaking memory;
/// an unknown key means the file was written by an incompatible build
/// and the entry is discarded (re-synthesized) rather than guessed at.
pub const FIELD_KEYS: &[&str] = &[
    "feasible",
    "spec_digest",
    "structure_digest",
    "task_subdigests",
    "error",
    "firings",
    "makespan",
    "states_visited",
    "minimum_states",
    "overhead_ratio",
    "backtracks",
    "pruned_misses",
    "pruned_dead",
    "dead_states",
    "peak_dead_set_bytes",
    "states_per_second",
    "wall_time_ms",
    "jobs",
    "steals",
    "incr_seed_hits",
    "incr_replayed",
    "incr_states_saved",
    "por_stubborn_skips",
    "por_sleep_skips",
    "por_overlap_skips",
    "violations",
];

/// Interns `name` to its `'static` counterpart in [`FIELD_KEYS`], or
/// `None` when the key is not one the renderers emit.
pub fn static_key(name: &str) -> Option<&'static str> {
    FIELD_KEYS.iter().find(|key| **key == name).copied()
}

/// Renders the fields as the CLI's pretty flat object: one key per
/// line, two-space indent, no trailing comma, no trailing newline.
pub fn render_pretty(fields: &[(&'static str, String)]) -> String {
    let mut out = String::from("{\n");
    for (index, (key, value)) in fields.iter().enumerate() {
        let comma = if index + 1 == fields.len() { "" } else { "," };
        out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    out.push('}');
    out
}

/// Renders the fields as one compact line — the batch-mode row format.
pub fn render_compact(fields: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (index, (key, value)) in fields.iter().enumerate() {
        if index > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{key}\": {value}"));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::project_digest;
    use ezrt_core::Project;
    use ezrt_spec::corpus::small_control;

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn pretty_rendering_is_one_balanced_flat_object() {
        let project = Project::new(small_control());
        let digest = project_digest(&project);
        let outcome = project.synthesize().expect("feasible");
        let text = render_pretty(&success_fields(&digest, &project, &outcome));
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with('}'));
        assert!(!text.contains(",\n}"));
        assert!(text.contains("\"feasible\": true"));
        assert!(text.contains("\"spec_digest\": \""));
        assert!(text.contains("\"violations\": 0"));
    }

    #[test]
    fn compact_rendering_is_one_line() {
        let project = Project::new(small_control());
        let digest = project_digest(&project);
        let outcome = project.synthesize().expect("feasible");
        let line = render_compact(&success_fields(&digest, &project, &outcome));
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"makespan\": "));
    }

    #[test]
    fn every_rendered_key_is_internable() {
        let project = Project::new(small_control());
        let digest = project_digest(&project);
        let outcome = project.synthesize().expect("feasible");
        for (key, _) in success_fields(&digest, &project, &outcome) {
            assert_eq!(static_key(key), Some(key), "success key {key}");
        }
        use ezrt_scheduler::SchedulerConfig;
        let failing = Project::new(small_control()).with_config(SchedulerConfig {
            max_states: 1,
            ..SchedulerConfig::default()
        });
        let error = failing.synthesize().expect_err("state budget of one");
        for (key, _) in failure_fields(&digest, &error) {
            assert_eq!(static_key(key), Some(key), "failure key {key}");
        }
        assert_eq!(static_key("not-a-field"), None);
    }

    #[test]
    fn failure_fields_cover_the_cli_contract() {
        use ezrt_scheduler::SchedulerConfig;
        let project = Project::new(small_control()).with_config(SchedulerConfig {
            max_states: 1,
            ..SchedulerConfig::default()
        });
        let digest = project_digest(&project);
        let error = project.synthesize().expect_err("state budget of one");
        let fields = failure_fields(&digest, &error);
        let keys: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys[..3], ["feasible", "spec_digest", "error"]);
        assert!(keys.contains(&"states_visited"));
        assert_eq!(fields[0].1, "false");
    }
}
