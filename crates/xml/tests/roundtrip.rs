//! Property tests: arbitrary element trees survive write→parse round trips.

use ezrt_xml::{parse, write_document, Element, WriteOptions};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.-]{0,8}".prop_map(|s| s)
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Printable text with XML specials mixed in; no leading/trailing
    // whitespace because the parser drops whitespace-only nodes and the
    // tree getter trims.
    "[ -~]{1,20}"
        .prop_map(|s| s.trim().to_owned())
        .prop_filter("non-empty after trim", |s| !s.is_empty())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), text_strategy()), 0..3),
        prop::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            for (n, v) in attrs {
                // Duplicate attribute names are invalid XML; set_attr dedups.
                e.set_attr(n, v);
            }
            if let Some(t) = text {
                e.push_text(t);
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), text_strategy()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (n, v) in attrs {
                    e.set_attr(n, v);
                }
                for c in children {
                    e.push_child(c);
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn pretty_round_trip(root in element_strategy()) {
        let text = write_document(&root, &WriteOptions::default());
        let reparsed = parse(&text).expect("written document must parse");
        prop_assert_eq!(reparsed, root);
    }

    #[test]
    fn compact_round_trip(root in element_strategy()) {
        let text = write_document(&root, &WriteOptions { indent: None, declaration: false });
        let reparsed = parse(&text).expect("written document must parse");
        prop_assert_eq!(reparsed, root);
    }

    #[test]
    fn escape_unescape_identity(s in "[ -~]{0,64}") {
        let escaped = ezrt_xml::escape_text(&s);
        prop_assert_eq!(ezrt_xml::unescape(&escaped, 0).unwrap(), s.clone());
        let escaped_attr = ezrt_xml::escape_attr(&s);
        prop_assert_eq!(ezrt_xml::unescape(&escaped_attr, 0).unwrap(), s);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }
}
