//! Escaping and unescaping of XML character data.

use crate::ParseXmlError;

/// Escapes text for use as XML character data (element content).
///
/// Replaces `&`, `<` and `>` with their predefined entities. Quotes are left
/// alone because they are harmless in content position.
///
/// # Examples
///
/// ```
/// assert_eq!(ezrt_xml::escape_text("a < b && c"), "a &lt; b &amp;&amp; c");
/// ```
pub fn escape_text(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes text for use inside a double-quoted XML attribute value.
///
/// In addition to the substitutions of [`escape_text`] this replaces `"` with
/// `&quot;` and newlines/tabs with character references so they survive
/// attribute-value normalization.
///
/// # Examples
///
/// ```
/// assert_eq!(ezrt_xml::escape_attr("say \"hi\""), "say &quot;hi&quot;");
/// ```
pub fn escape_attr(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            other => out.push(other),
        }
    }
    out
}

/// Expands the five predefined entities and numeric character references.
///
/// This is the inverse of [`escape_text`] / [`escape_attr`].
///
/// # Errors
///
/// Returns [`ParseXmlError`] when an `&` is not followed by a well-formed
/// entity or character reference.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), ezrt_xml::ParseXmlError> {
/// assert_eq!(ezrt_xml::unescape("1 &lt; 2", 0)?, "1 < 2");
/// assert_eq!(ezrt_xml::unescape("&#65;&#x42;", 0)?, "AB");
/// # Ok(())
/// # }
/// ```
pub fn unescape(raw: &str, base_offset: usize) -> Result<String, ParseXmlError> {
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Multi-byte UTF-8 sequences never contain b'&', so copying the
            // char as a whole is safe.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&raw[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = raw[i..]
            .find(';')
            .ok_or_else(|| ParseXmlError::new(base_offset + i, "unterminated entity reference"))?;
        let entity = &raw[i + 1..i + semi];
        let expanded = expand_entity(entity)
            .ok_or_else(|| ParseXmlError::new(base_offset + i, "unknown entity reference"))?;
        out.push(expanded);
        i += semi + 1;
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xe0 => 2,
        b if b < 0xf0 => 3,
        _ => 4,
    }
}

fn expand_entity(entity: &str) -> Option<char> {
    match entity {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let rest = entity.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_handles_all_specials() {
        assert_eq!(escape_text("<a> & </a>"), "&lt;a&gt; &amp; &lt;/a&gt;");
    }

    #[test]
    fn escape_text_leaves_plain_text_untouched() {
        assert_eq!(escape_text("plain text 123"), "plain text 123");
    }

    #[test]
    fn escape_attr_handles_quotes_and_whitespace() {
        assert_eq!(escape_attr("\"x\"\n"), "&quot;x&quot;&#10;");
    }

    #[test]
    fn unescape_round_trips_text_escape() {
        let raw = "a < b & c > d \"quoted\" 'single'";
        assert_eq!(unescape(&escape_text(raw), 0).unwrap(), raw);
        assert_eq!(unescape(&escape_attr(raw), 0).unwrap(), raw);
    }

    #[test]
    fn unescape_decimal_and_hex_references() {
        assert_eq!(unescape("&#65;", 0).unwrap(), "A");
        assert_eq!(unescape("&#x41;", 0).unwrap(), "A");
        assert_eq!(unescape("&#X41;", 0).unwrap(), "A");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        let err = unescape("&nbsp;", 3).unwrap_err();
        assert_eq!(err.offset(), 3);
    }

    #[test]
    fn unescape_rejects_unterminated_entity() {
        assert!(unescape("&amp", 0).is_err());
    }

    #[test]
    fn unescape_preserves_multibyte_utf8() {
        assert_eq!(unescape("péri&lt;ode", 0).unwrap(), "péri<ode");
    }

    #[test]
    fn unescape_rejects_invalid_codepoint() {
        assert!(unescape("&#x110000;", 0).is_err());
    }
}
