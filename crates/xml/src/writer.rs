//! Serialization of element trees back to XML text.

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Element, Node};
use std::fmt::Write as _;

/// Formatting options for [`write_document`].
///
/// # Examples
///
/// ```
/// use ezrt_xml::{Element, WriteOptions, write_document};
///
/// let mut root = Element::new("spec");
/// root.push_text_child("period", "9");
/// let compact = write_document(&root, &WriteOptions { indent: None, declaration: false });
/// assert_eq!(compact, "<spec><period>9</period></spec>");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOptions {
    /// Number of spaces per nesting level, or `None` for compact output.
    pub indent: Option<usize>,
    /// Whether to emit the `<?xml version="1.0" encoding="UTF-8"?>` line.
    pub declaration: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            indent: Some(2),
            declaration: true,
        }
    }
}

/// Serializes `root` as an XML document according to `options`.
///
/// Elements whose content is a single text node are written on one line
/// (`<period>9</period>`), matching the style of the paper's Fig. 7 listing.
pub fn write_document(root: &Element, options: &WriteOptions) -> String {
    let mut out = String::new();
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    write_element(&mut out, root, options, 0);
    if options.indent.is_some() {
        out.push('\n');
    }
    out
}

fn write_element(out: &mut String, element: &Element, options: &WriteOptions, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = options.indent {
            for _ in 0..depth * width {
                out.push(' ');
            }
        }
    };

    pad(out, depth);
    out.push('<');
    out.push_str(&element.name);
    for (name, value) in &element.attributes {
        let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
    }

    if element.nodes.is_empty() {
        out.push_str("/>");
        return;
    }

    let single_text = element.nodes.len() == 1 && matches!(element.nodes[0], Node::Text(_));
    out.push('>');
    if single_text {
        if let Node::Text(t) = &element.nodes[0] {
            out.push_str(&escape_text(t));
        }
    } else {
        for node in &element.nodes {
            if options.indent.is_some() {
                out.push('\n');
            }
            match node {
                Node::Element(child) => write_element(out, child, options, depth + 1),
                Node::Text(text) => {
                    pad(out, depth + 1);
                    out.push_str(&escape_text(text));
                }
            }
        }
        if options.indent.is_some() {
            out.push('\n');
        }
        pad(out, depth);
    }
    out.push_str("</");
    out.push_str(&element.name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sample() -> Element {
        let mut root = Element::new("rt:ez-spec");
        root.set_attr("xmlns:rt", "http://pnmp.sf.net/EZRealtime");
        let mut task = Element::new("Task");
        task.set_attr("identifier", "ez1");
        task.push_text_child("name", "T1");
        task.push_text_child("period", "9");
        root.push_child(task);
        root
    }

    #[test]
    fn default_output_has_declaration_and_indent() {
        let text = write_document(&sample(), &WriteOptions::default());
        assert!(text.starts_with("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"));
        assert!(text.contains("\n  <Task identifier=\"ez1\">"));
        assert!(text.contains("\n    <name>T1</name>"));
    }

    #[test]
    fn compact_output_has_no_whitespace() {
        let text = write_document(
            &sample(),
            &WriteOptions {
                indent: None,
                declaration: false,
            },
        );
        assert!(!text.contains('\n'));
        assert!(text.contains("<period>9</period>"));
    }

    #[test]
    fn attribute_values_are_escaped() {
        let mut e = Element::new("x");
        e.set_attr("msg", "a \"b\" & <c>");
        let text = write_document(
            &e,
            &WriteOptions {
                indent: None,
                declaration: false,
            },
        );
        assert_eq!(text, "<x msg=\"a &quot;b&quot; &amp; &lt;c&gt;\"/>");
    }

    #[test]
    fn round_trip_parse_of_written_document() {
        let original = sample();
        let text = write_document(&original, &WriteOptions::default());
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn round_trip_compact() {
        let original = sample();
        let text = write_document(
            &original,
            &WriteOptions {
                indent: None,
                declaration: false,
            },
        );
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn mixed_content_round_trips_shape() {
        let mut e = Element::new("m");
        e.push_text("hello");
        e.push_child(Element::new("c"));
        let text = write_document(
            &e,
            &WriteOptions {
                indent: None,
                declaration: false,
            },
        );
        assert_eq!(text, "<m>hello<c/></m>");
        assert_eq!(parse(&text).unwrap(), e);
    }
}
