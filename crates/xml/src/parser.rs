//! A recursive-descent parser for the XML subset.

use crate::escape::unescape;
use crate::tree::{Element, Node};
use crate::ParseXmlError;

/// Parses an XML document and returns its root element.
///
/// Comments, processing instructions, the XML declaration and a DOCTYPE line
/// are tolerated and skipped. Character data is unescaped. CDATA sections
/// are taken verbatim.
///
/// # Errors
///
/// Returns [`ParseXmlError`] on malformed input: mismatched tags, unclosed
/// elements, bad attribute syntax, unknown entities, or trailing content
/// after the root element.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), ezrt_xml::ParseXmlError> {
/// let root = ezrt_xml::parse(r#"<?xml version="1.0"?>
/// <rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime">
///   <Task identifier="ez1"><name>T1</name></Task>
/// </rt:ez-spec>"#)?;
/// assert_eq!(root.name, "rt:ez-spec");
/// assert_eq!(root.child("Task").unwrap().child_text("name").as_deref(), Some("T1"));
/// # Ok(())
/// # }
/// ```
pub fn parse(input: &str) -> Result<Element, ParseXmlError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(p.error("content after document root"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseXmlError {
        ParseXmlError::new(self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.input[self.pos..].starts_with(prefix)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, DOCTYPE, comments and PIs before the root.
    fn skip_prolog(&mut self) -> Result<(), ParseXmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips trailing whitespace, comments and PIs after the root.
    fn skip_misc(&mut self) -> Result<(), ParseXmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, terminator: &str) -> Result<(), ParseXmlError> {
        match self.input[self.pos..].find(terminator) {
            Some(idx) => {
                self.pos += idx + terminator.len();
                Ok(())
            }
            None => Err(self.error("unterminated markup")),
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseXmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.' | ':') || c >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected name"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn expect(&mut self, ch: u8, what: &str) -> Result<(), ParseXmlError> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn parse_element(&mut self) -> Result<Element, ParseXmlError> {
        self.expect(b'<', "expected element start")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>', "expected '>' after '/'")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=', "expected '=' in attribute")?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.error("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let raw = &self.input[start..self.pos];
                    self.pos += 1;
                    let value = unescape(raw, start)?;
                    element.attributes.push((attr_name.to_owned(), value));
                }
                None => return Err(self.error("unclosed element")),
            }
        }

        // Content until the matching close tag.
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.error("unclosed element"));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != element.name {
                    return Err(self.error("mismatched closing tag"));
                }
                self.skip_ws();
                self.expect(b'>', "expected '>' in closing tag")?;
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                match self.input[self.pos..].find("]]>") {
                    Some(idx) => {
                        element
                            .nodes
                            .push(Node::Text(self.input[start..start + idx].to_owned()));
                        self.pos += idx + 3;
                    }
                    None => return Err(self.error("unterminated CDATA section")),
                }
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.nodes.push(Node::Element(child));
            } else {
                let start = self.pos;
                while self.peek().is_some_and(|c| c != b'<') {
                    self.pos += 1;
                }
                let raw = &self.input[start..self.pos];
                let text = unescape(raw, start)?;
                if !text.trim().is_empty() {
                    element.nodes.push(Node::Text(text));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_self_closing_root() {
        let e = parse("<empty/>").unwrap();
        assert_eq!(e.name, "empty");
        assert!(e.nodes.is_empty());
    }

    #[test]
    fn parses_attributes_with_both_quote_styles() {
        let e = parse(r#"<t a="1" b='two'/>"#).unwrap();
        assert_eq!(e.attr("a"), Some("1"));
        assert_eq!(e.attr("b"), Some("two"));
    }

    #[test]
    fn parses_nested_elements_and_text() {
        let e = parse("<a><b>hello</b><b>world</b></a>").unwrap();
        let texts: Vec<String> = e.children_named("b").map(Element::text).collect();
        assert_eq!(texts, ["hello", "world"]);
    }

    #[test]
    fn skips_declaration_doctype_comments_and_pis() {
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE x><!-- c --><x><!-- inner --><?pi data?></x><!-- after -->";
        let e = parse(doc).unwrap();
        assert_eq!(e.name, "x");
        assert!(e.nodes.is_empty());
    }

    #[test]
    fn unescapes_text_and_attributes() {
        let e = parse(r#"<t msg="a &amp; b">1 &lt; 2</t>"#).unwrap();
        assert_eq!(e.attr("msg"), Some("a & b"));
        assert_eq!(e.text(), "1 < 2");
    }

    #[test]
    fn cdata_is_verbatim() {
        let e = parse("<code><![CDATA[if (a < b && c) { x(); }]]></code>").unwrap();
        assert_eq!(e.text(), "if (a < b && c) { x(); }");
    }

    #[test]
    fn namespace_prefixes_are_preserved() {
        let e = parse(r#"<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime"/>"#).unwrap();
        assert_eq!(e.name, "rt:ez-spec");
        assert_eq!(
            e.attr("xmlns:rt"),
            Some("http://pnmp.sf.net/EZRealtime"),
            "namespace declarations are plain attributes in this subset"
        );
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let e = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(e.nodes.len(), 1);
    }

    #[test]
    fn rejects_mismatched_close_tag() {
        assert!(parse("<a></b>").is_err());
    }

    #[test]
    fn rejects_unclosed_element() {
        assert!(parse("<a><b></b>").is_err());
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_bad_attribute_syntax() {
        assert!(parse("<a x=1/>").is_err());
        assert!(parse("<a x=\"1/>").is_err());
    }

    #[test]
    fn error_offsets_point_into_input() {
        let doc = "<a><b></c></a>";
        let err = parse(doc).unwrap_err();
        assert!(err.offset() <= doc.len());
    }

    #[test]
    fn parses_unicode_content() {
        let e = parse("<t>período</t>").unwrap();
        assert_eq!(e.text(), "período");
    }
}
