//! Minimal XML substrate for the ezRealtime toolchain.
//!
//! The ezRealtime paper exchanges data through two XML dialects: the
//! `<rt:ez-spec>` domain-specific language (paper Fig. 7) and PNML, the
//! ISO/IEC 15909-2 Petri Net Markup Language. Rather than pulling a large
//! external dependency for the handful of constructs those dialects need,
//! this crate implements a small, well-tested XML 1.0 subset:
//!
//! * elements with attributes (namespace *prefixes* are kept verbatim),
//! * character data with the five predefined entities
//!   (`&lt; &gt; &amp; &apos; &quot;`) plus numeric character references,
//! * comments and processing instructions (skipped on parse),
//! * an XML declaration (emitted on write, tolerated on read),
//! * CDATA sections.
//!
//! It intentionally does **not** implement DTDs, schema validation or
//! namespace resolution — the ezRealtime dialects need none of those.
//!
//! # Examples
//!
//! ```
//! use ezrt_xml::{Element, parse};
//!
//! # fn main() -> Result<(), ezrt_xml::ParseXmlError> {
//! let doc = parse("<spec version=\"1\"><task name=\"T1\"/></spec>")?;
//! assert_eq!(doc.name, "spec");
//! assert_eq!(doc.attr("version"), Some("1"));
//! assert_eq!(doc.children().count(), 1);
//!
//! let mut root = Element::new("spec");
//! root.set_attr("version", "1");
//! root.push_child(Element::new("task"));
//! let text = root.to_xml_string();
//! assert!(text.contains("<task/>"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod escape;
mod parser;
mod tree;
mod writer;

pub use error::ParseXmlError;
pub use escape::{escape_attr, escape_text, unescape};
pub use parser::parse;
pub use tree::{Element, Node};
pub use writer::{write_document, WriteOptions};
