//! The XML document tree: [`Element`] and [`Node`].

/// A node in an XML element's content.
///
/// The parser only materializes element and text nodes; comments and
/// processing instructions are skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (already unescaped).
    Text(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Returns the contained text, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Element(_) => None,
            Node::Text(t) => Some(t),
        }
    }
}

/// An XML element: a name, attributes in document order, and content nodes.
///
/// Attribute and element names keep any namespace prefix verbatim (e.g.
/// `rt:ez-spec`); the ezRealtime dialects treat prefixed names as opaque.
///
/// # Examples
///
/// ```
/// use ezrt_xml::Element;
///
/// let mut task = Element::new("Task");
/// task.set_attr("identifier", "ez1");
/// task.push_text_child("name", "T1");
/// assert_eq!(task.attr("identifier"), Some("ez1"));
/// assert_eq!(task.child_text("name").as_deref(), Some("T1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name, including any namespace prefix.
    pub name: String,
    /// Attributes as `(name, value)` pairs in document order.
    pub attributes: Vec<(String, String)>,
    /// Ordered content of the element.
    pub nodes: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
        self
    }

    /// Appends a child element.
    pub fn push_child(&mut self, child: Element) -> &mut Self {
        self.nodes.push(Node::Element(child));
        self
    }

    /// Appends raw character data.
    pub fn push_text(&mut self, text: impl Into<String>) -> &mut Self {
        self.nodes.push(Node::Text(text.into()));
        self
    }

    /// Appends a child element that wraps a single text node, a very common
    /// pattern in both the ezRealtime DSL and PNML
    /// (`<period>9</period>`, `<text>label</text>`).
    pub fn push_text_child(
        &mut self,
        name: impl Into<String>,
        text: impl Into<String>,
    ) -> &mut Self {
        let mut child = Element::new(name);
        child.push_text(text);
        self.push_child(child)
    }

    /// Iterates over child *elements*, skipping text nodes.
    pub fn children(&self) -> impl Iterator<Item = &Element> {
        self.nodes.iter().filter_map(Node::as_element)
    }

    /// Iterates over child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children().filter(move |e| e.name == name)
    }

    /// Returns the first child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children().find(|e| e.name == name)
    }

    /// Returns the concatenated text content of this element (direct text
    /// nodes only), trimmed of surrounding whitespace.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out.trim().to_owned()
    }

    /// Returns the trimmed text content of the first child with `name`.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(Element::text)
    }

    /// Serializes this element (and its subtree) as a standalone XML
    /// document with declaration, using default formatting.
    pub fn to_xml_string(&self) -> String {
        crate::writer::write_document(self, &crate::writer::WriteOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        let mut root = Element::new("spec");
        root.set_attr("version", "1");
        let mut t1 = Element::new("task");
        t1.set_attr("name", "T1");
        t1.push_text_child("period", "9");
        root.push_child(t1);
        root.push_text("   ");
        let mut t2 = Element::new("task");
        t2.set_attr("name", "T2");
        root.push_child(t2);
        root
    }

    #[test]
    fn attr_lookup_and_replacement() {
        let mut e = sample();
        assert_eq!(e.attr("version"), Some("1"));
        assert_eq!(e.attr("missing"), None);
        e.set_attr("version", "2");
        assert_eq!(e.attr("version"), Some("2"));
        assert_eq!(e.attributes.len(), 1, "set_attr must replace in place");
    }

    #[test]
    fn children_iterators_skip_text() {
        let e = sample();
        assert_eq!(e.children().count(), 2);
        assert_eq!(e.children_named("task").count(), 2);
        assert_eq!(e.children_named("nothing").count(), 0);
    }

    #[test]
    fn child_text_extracts_trimmed_content() {
        let e = sample();
        let t1 = e.child("task").unwrap();
        assert_eq!(t1.child_text("period").as_deref(), Some("9"));
        assert_eq!(t1.child_text("deadline"), None);
    }

    #[test]
    fn text_concatenates_direct_text_nodes_only() {
        let mut e = Element::new("x");
        e.push_text("a");
        e.push_child({
            let mut c = Element::new("c");
            c.push_text("inner");
            c
        });
        e.push_text("b");
        assert_eq!(e.text(), "ab");
    }

    #[test]
    fn node_accessors() {
        let e = Node::Element(Element::new("e"));
        let t = Node::Text("hi".into());
        assert!(e.as_element().is_some());
        assert!(e.as_text().is_none());
        assert_eq!(t.as_text(), Some("hi"));
        assert!(t.as_element().is_none());
    }
}
