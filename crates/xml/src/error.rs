//! Error type reported by the XML parser.

use std::error::Error;
use std::fmt;

/// An error produced while parsing an XML document.
///
/// Carries the byte offset at which the problem was detected together with a
/// human-readable description, so callers can point users at the offending
/// position of a DSL or PNML file.
///
/// # Examples
///
/// ```
/// use ezrt_xml::parse;
///
/// let err = parse("<open>").unwrap_err();
/// assert!(err.to_string().contains("unclosed element"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    /// Byte offset into the input where the error was detected.
    offset: usize,
    /// Description of the problem, lowercase per Rust error conventions.
    message: String,
}

impl ParseXmlError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseXmlError {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset into the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The error description without position information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for ParseXmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_offset_and_message() {
        let e = ParseXmlError::new(17, "unexpected end of input");
        assert_eq!(e.to_string(), "unexpected end of input at byte 17");
        assert_eq!(e.offset(), 17);
        assert_eq!(e.message(), "unexpected end of input");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ParseXmlError>();
    }
}
