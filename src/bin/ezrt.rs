//! `ezrt` — the ezRealtime command-line tool.
//!
//! The original ezRealtime is an Eclipse GUI; this binary exposes the
//! same flow on the command line, reading `<rt:ez-spec>` XML documents
//! (paper Fig. 7) and driving the pipeline of Fig. 6:
//!
//! ```text
//! ezrt check     spec.xml             validate the specification
//! ezrt schedule  spec.xml             synthesize and report statistics
//! ezrt gantt     spec.xml [from to]   ASCII timeline of the schedule
//! ezrt table     spec.xml             the Fig. 8 schedule table
//! ezrt codegen   spec.xml [target]    emit C (posix_sim|generic|i8051|avr8|arm9|m68k|x86)
//! ezrt pnml      spec.xml             export the net as ISO 15909-2 PNML
//! ezrt dot       spec.xml             export the net as Graphviz DOT
//! ezrt simulate  spec.xml [periods]   execute on the simulated dispatcher
//! ezrt compare   spec.xml             pre-runtime vs online schedulers
//! ezrt analyze   spec.xml             utilization, demand-bound and RTA verdicts
//! ezrt invariants spec.xml            place invariants of the translated net
//! ezrt sweep     spec.xml --grid G    feasibility frontier over a parameter grid
//! ezrt serve     --addr HOST:PORT     run the HTTP synthesis service
//! ezrt batch     specs-dir            synthesize a directory, one JSON row per spec
//! ```
//!
//! The global `--jobs N` flag runs the synthesis on `N` worker threads
//! (default 1, the sequential search) and `--por off|classic|stubborn`
//! selects the partial-order reduction level (default `stubborn`);
//! `ezrt schedule --json` emits the
//! search statistics as one flat JSON object for scripting, including
//! the `spec_digest` cache key the server and batch rows share, so the
//! three surfaces are join-able by key.
//!
//! The artifact commands (`schedule`, `table`, `codegen`, `gantt`,
//! `pnml`) render through the shared `ezrt_artifacts` layer — the same
//! code path as the HTTP artifact endpoints, so CLI bytes and server
//! bodies are identical for one spec digest. The global `--cache-dir
//! DIR` flag points them (and `serve`/`batch`) at a persistent digest
//! store: a result synthesized by any surface is reused by every other.
//!
//! All output goes to stdout so results compose with shell pipelines;
//! diagnostics go to stderr and failures exit nonzero.

use ezrealtime::artifacts::{
    compute_outcome, compute_outcome_incremental, ArtifactKind, SpecDigest, SynthesisOutcome,
};
use ezrealtime::codegen::Target;
use ezrealtime::core::Project;
use ezrealtime::server::batch::{run_batch, BatchOptions};
use ezrealtime::server::cache::ResultCache;
use ezrealtime::server::digest::project_digest;
use ezrealtime::server::disk::DiskTier;
use ezrealtime::server::report;
use ezrealtime::server::sweep::{run_sweep, SweepOptions};
use ezrealtime::server::{Server, ServerConfig};
use ezrealtime::sim::{simulate_online, OnlinePolicy};
use ezrealtime::spec::sweep::SweepGrid;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ezrt: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut args: Vec<String> = args.to_vec();
    let jobs = match take_option_value(&mut args, "--jobs")? {
        Some(value) => value
            .parse::<usize>()
            .ok()
            .filter(|&jobs| jobs >= 1)
            .ok_or_else(|| format!("--jobs expects a positive number, found {value:?}"))?,
        None => 1,
    };
    let por = match take_option_value(&mut args, "--por")? {
        Some(value) => ezrealtime::scheduler::PorLevel::parse(&value)
            .ok_or_else(|| format!("--por expects off|classic|stubborn, found {value:?}"))?,
        None => ezrealtime::scheduler::PorLevel::default(),
    };
    let json = take_flag(&mut args, "--json");
    let cache_dir = take_option_value(&mut args, "--cache-dir")?;
    let cache_dir = cache_dir.as_deref();
    let cache_max_bytes = match take_option_value(&mut args, "--cache-max-bytes")? {
        Some(value) => Some(value.parse::<u64>().map_err(|_| {
            format!("--cache-max-bytes expects a number of bytes, found {value:?}")
        })?),
        None => None,
    };
    if cache_max_bytes.is_some() && cache_dir.is_none() {
        return Err("--cache-max-bytes requires --cache-dir".to_owned());
    }
    let warm_from = take_option_value(&mut args, "--warm-from")?;
    let grid = take_option_value(&mut args, "--grid")?;
    let trace = take_flag(&mut args, "--trace");
    let log_file = take_option_value(&mut args, "--log-file")?;

    let Some(command) = args.first() else {
        return Err(usage());
    };
    if command == "--help" || command == "-h" || command == "help" {
        println!("{}", usage());
        return Ok(());
    }
    if warm_from.is_some() && command != "schedule" {
        return Err("--warm-from is only supported by `ezrt schedule`".to_owned());
    }
    if grid.is_some() && command != "sweep" {
        return Err("--grid is only supported by `ezrt sweep`".to_owned());
    }
    if log_file.is_some() && command != "serve" {
        return Err("--log-file is only supported by `ezrt serve`".to_owned());
    }
    if trace && command == "serve" {
        return Err(
            "--trace is for one-shot commands; `ezrt serve` exposes GET /v1/metrics instead"
                .to_owned(),
        );
    }
    if trace {
        ezrealtime::obs::set_tracing(true);
    }
    // serve and batch take no spec-file argument; route them before the
    // common load-one-spec path.
    if command == "serve" {
        if json {
            return Err("--json is only supported by `ezrt schedule` and `ezrt batch`".to_owned());
        }
        return serve(
            &mut args,
            jobs,
            por,
            cache_dir,
            cache_max_bytes,
            log_file.as_deref(),
        );
    }
    if command == "batch" {
        return finish_trace(
            trace,
            batch(&mut args, jobs, por, json, cache_dir, cache_max_bytes),
        );
    }
    if json && command != "schedule" {
        return Err("--json is only supported by `ezrt schedule` and `ezrt batch`".to_owned());
    }
    if cache_dir.is_some()
        && !matches!(
            command.as_str(),
            "schedule" | "table" | "codegen" | "gantt" | "pnml" | "sweep"
        )
    {
        return Err(
            "--cache-dir is only supported by schedule, table, codegen, gantt, pnml, sweep, \
             serve and batch"
                .to_owned(),
        );
    }
    let path = args.get(1).ok_or_else(usage)?;
    let document = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let project = Project::from_dsl(&document)
        .map_err(|e| format!("{path}: {e}"))?
        .with_jobs(jobs)
        .with_por(por);
    // The one-shot commands share the server's cache type so every
    // surface funnels through the same tiers: outcome memory + optional
    // disk, and the rendered-byte tier behind the artifact commands.
    let cache = artifact_cache(cache_dir, cache_max_bytes)?;

    let result = match command.as_str() {
        "check" => check(&project),
        "schedule" => schedule(&project, json, &cache, warm_from.as_deref()),
        "gantt" => gantt(&project, args.get(2), args.get(3), &cache),
        "table" => artifact(&project, ArtifactKind::Table, &cache),
        "codegen" => codegen(&project, args.get(2), &cache),
        "pnml" => artifact(&project, ArtifactKind::Pnml, &cache),
        "dot" => {
            println!(
                "{}",
                ezrealtime::tpn::dot::to_dot(project.translate().net())
            );
            Ok(())
        }
        "simulate" => simulate(&project, args.get(2)),
        "sweep" => {
            if let Some(extra) = args.get(2) {
                return Err(format!("sweep: unexpected argument {extra:?}"));
            }
            sweep(&project, grid.as_deref(), &cache)
        }
        "compare" => compare(&project),
        "analyze" => analyze(&project),
        "invariants" => invariants(&project),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    finish_trace(trace, result)
}

/// Prints the aggregated span tree of a `--trace` run to **stderr** —
/// never stdout, whose bytes are the artifact contract shared with the
/// HTTP surface — then passes the command result through.
fn finish_trace(trace: bool, result: Result<(), String>) -> Result<(), String> {
    if trace {
        let tree = ezrealtime::obs::drain_spans();
        eprintln!("ezrt trace:");
        if tree.is_empty() {
            eprintln!("  (no spans recorded)");
        } else {
            for line in tree.render().lines() {
                eprintln!("  {line}");
            }
        }
    }
    result
}

/// Removes `--flag value` from `args`, returning the value when present.
/// A repeated flag is an error — silently honouring one of two
/// contradictory values (`--jobs 2 --jobs 4`) would be a footgun.
fn take_option_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if at + 1 >= args.len() {
        return Err(format!("{flag} expects a value"));
    }
    let value = args.remove(at + 1);
    args.remove(at);
    if args.iter().any(|a| a == flag) {
        return Err(format!("{flag} may only be given once"));
    }
    Ok(Some(value))
}

/// Removes a bare `--flag` from `args`, returning whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(at);
    true
}

fn usage() -> String {
    "usage: ezrt [--jobs N] [--por LEVEL] [--cache-dir DIR] [--cache-max-bytes B] <command> <spec.xml> [args]\n\
     commands:\n\
     \x20 check     validate the specification\n\
     \x20 schedule  synthesize the pre-runtime schedule and print statistics\n\
     \x20           (--json: machine-readable SearchStats on stdout;\n\
     \x20           --warm-from <file|digest>: seed the search from that\n\
     \x20           earlier spec's cached schedule prefix)\n\
     \x20 gantt     [from to] print an ASCII timeline (default first 120 units)\n\
     \x20 table     print the schedule table as a C array (paper Fig. 8)\n\
     \x20 codegen   [target] emit scheduled C code (posix_sim|generic|i8051|avr8|arm9|m68k|x86)\n\
     \x20 pnml      export the synthesized time Petri net as PNML\n\
     \x20 dot       export the translated net as Graphviz DOT\n\
     \x20 simulate  [periods] execute the schedule on the simulated dispatcher\n\
     \x20 compare   pre-runtime synthesis vs online EDF/RM/DM baselines\n\
     \x20 analyze   analytical schedulability: utilization, demand bound, RTA\n\
     \x20 invariants place invariants (Farkas) of the translated Petri net\n\
     \x20 sweep     --grid \"periods:100,150;deadlines:75,100;jitter:0,2\"\n\
     \x20           feasibility frontier: cross the spec with the grid\n\
     \x20           (percent scales for periods/deadlines, absolute release\n\
     \x20           jitter), one JSON row per point on stdout; points are\n\
     \x20           deduplicated by digest and warm-started from the base\n\
     \x20           spec's outcome (--jobs fans out points; rows are\n\
     \x20           byte-identical regardless of fan-out)\n\
     service commands (no spec.xml argument):\n\
     \x20 serve     --addr HOST:PORT [--cache-cap N] [--workers W]\n\
     \x20           [--max-pending N] run the HTTP synthesis service\n\
     \x20           (POST /v1/schedule|/v1/check|/v1/table|/v1/codegen|/v1/gantt,\n\
     \x20           POST /v1/sweep?grid=...,\n\
     \x20           GET /v1/artifact/<digest>/<kind>, GET /v1/healthz,\n\
     \x20           GET /v1/stats, GET /v1/metrics, POST /v1/shutdown);\n\
     \x20           results are cached by spec digest; --log-file FILE\n\
     \x20           appends one NDJSON access-log line per request\n\
     \x20 batch     <dir> [--json] synthesize every *.xml spec under dir\n\
     \x20           through the same digest cache, one row per spec\n\
     \x20           (--jobs fans out files; per-spec search stays sequential)\n\
     global flags:\n\
     \x20 --jobs N        synthesis worker threads (default 1 = sequential;\n\
     \x20                 N > 1 races DFS subtrees, first feasible schedule wins)\n\
     \x20 --por LEVEL     partial-order reduction: off | classic | stubborn\n\
     \x20                 (default stubborn: stubborn + sleep sets; classic\n\
     \x20                 reproduces the reference search byte-for-byte;\n\
     \x20                 verdicts are identical at every level)\n\
     \x20 --cache-dir DIR persistent digest store shared by schedule/table/\n\
     \x20                 codegen/gantt/pnml/sweep, serve and batch: results\n\
     \x20                 found there are reused, fresh results are written back\n\
     \x20 --cache-max-bytes B  keep the --cache-dir store under B bytes\n\
     \x20                 (mtime-LRU sweep at startup and after writes;\n\
     \x20                 stale temp files and misnamed entries are reaped)\n\
     \x20 --trace         one-shot commands only: print the aggregated\n\
     \x20                 span tree (parse, translate, search, render, ...)\n\
     \x20                 to stderr after the command; stdout is unchanged"
        .to_owned()
}

/// `ezrt serve --addr HOST:PORT [--cache-cap N] [--workers W]
/// [--max-pending N]`: the long-lived HTTP synthesis service. The
/// global `--jobs` becomes the default per-request synthesis
/// parallelism (overridable per request with `?jobs=N`); `--workers`
/// sizes the connection pool; the global `--cache-dir` adds the
/// persistent cache tier.
fn serve(
    args: &mut Vec<String>,
    jobs: usize,
    por: ezrealtime::scheduler::PorLevel,
    cache_dir: Option<&str>,
    cache_max_bytes: Option<u64>,
    log_file: Option<&str>,
) -> Result<(), String> {
    let addr = take_option_value(args, "--addr")?
        .ok_or_else(|| format!("serve requires --addr HOST:PORT\n{}", usage()))?;
    let cache_capacity = match take_option_value(args, "--cache-cap")? {
        Some(value) => value
            .parse::<usize>()
            .map_err(|_| format!("--cache-cap expects a number of entries, found {value:?}"))?,
        None => 1024,
    };
    let workers = match take_option_value(args, "--workers")? {
        Some(value) => value
            .parse::<usize>()
            .ok()
            .filter(|&workers| workers >= 1)
            .ok_or_else(|| format!("--workers expects a positive number, found {value:?}"))?,
        None => 4,
    };
    let max_pending = match take_option_value(args, "--max-pending")? {
        Some(value) => value.parse::<usize>().map_err(|_| {
            format!("--max-pending expects a number of connections, found {value:?}")
        })?,
        None => 128,
    };
    if let Some(extra) = args.get(1) {
        return Err(format!("serve: unexpected argument {extra:?}"));
    }
    let config = ServerConfig {
        scheduler: ezrealtime::scheduler::SchedulerConfig {
            parallelism: ezrealtime::scheduler::Parallelism::new(jobs),
            por,
            ..ezrealtime::scheduler::SchedulerConfig::default()
        },
        workers,
        cache_capacity,
        cache_shards: 0,
        cache_dir: cache_dir.map(std::path::PathBuf::from),
        cache_max_bytes,
        max_pending,
        log_file: log_file.map(std::path::PathBuf::from),
    };
    let server = Server::start(&addr, config)?;
    println!("ezrt serve: listening on http://{}", server.addr());
    println!(
        "ezrt serve: {workers} worker(s), {jobs} default job(s), por {por}, \
         cache capacity {cache_capacity}"
    );
    if let Some(dir) = cache_dir {
        println!("ezrt serve: persistent cache at {dir}");
    }
    if let Some(path) = log_file {
        println!("ezrt serve: access log at {path}");
    }
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.wait(); // until POST /v1/shutdown; joins every thread
    println!("ezrt serve: shut down cleanly");
    Ok(())
}

/// `ezrt batch <dir> [--json]`: synthesize every `*.xml` spec under a
/// directory through the same queue + digest cache as the server, one
/// row per spec. `--jobs` fans the *files* out; each file's synthesis
/// runs the sequential engine so rows are deterministic and match
/// standalone `ezrt schedule --json` runs field for field.
fn batch(
    args: &mut [String],
    jobs: usize,
    por: ezrealtime::scheduler::PorLevel,
    json: bool,
    cache_dir: Option<&str>,
    cache_max_bytes: Option<u64>,
) -> Result<(), String> {
    let dir = args
        .get(1)
        .ok_or_else(|| format!("batch requires a spec directory\n{}", usage()))?;
    if let Some(extra) = args.get(2) {
        return Err(format!("batch: unexpected argument {extra:?}"));
    }
    let options = BatchOptions {
        fanout: ezrealtime::scheduler::Parallelism::new(jobs),
        scheduler: ezrealtime::scheduler::SchedulerConfig {
            por,
            ..ezrealtime::scheduler::SchedulerConfig::default()
        },
        ..BatchOptions::default()
    };
    let disk = match cache_dir {
        Some(dir) => Some(DiskTier::open_with_budget(dir, cache_max_bytes)?),
        None => None,
    };
    let cache = ResultCache::with_disk(options.cache_capacity, 8, disk);
    let rows = run_batch(std::path::Path::new(dir), &options, &cache)?;
    let mut failures = 0usize;
    for row in &rows {
        if json {
            println!("{}", row.line);
        } else if row.ok {
            // A terse human summary; the full counters live in --json.
            let verdict = if row.line.contains("\"feasible\": true") {
                "feasible"
            } else {
                "infeasible"
            };
            println!("{:<28} {verdict}", row.file);
        } else {
            println!("{:<28} ERROR", row.file);
        }
        if !row.ok {
            failures += 1;
        }
    }
    if failures > 0 {
        return Err(format!("{failures} spec(s) failed to load"));
    }
    Ok(())
}

fn synthesize(project: &Project) -> Result<ezrealtime::core::Outcome, String> {
    project
        .synthesize()
        .map_err(|e| format!("schedule synthesis failed: {e}"))
}

fn check(project: &Project) -> Result<(), String> {
    let spec = project.spec();
    spec.validate().map_err(|e| e.to_string())?;
    println!(
        "ok: {} task(s), {} processor(s), {} message(s), hyperperiod {}",
        spec.task_count(),
        spec.processors().count(),
        spec.messages().count(),
        spec.hyperperiod()
    );
    println!(
        "   {} task instance(s) per schedule period",
        spec.total_instances()
    );
    for (pid, processor) in spec.processors() {
        let utilization = spec.utilization(pid);
        let verdict = if utilization > 1.0 {
            " (OVERLOADED)"
        } else {
            ""
        };
        println!(
            "   {}: utilization {:.3}{verdict}",
            processor.name(),
            utilization
        );
    }
    Ok(())
}

/// Builds the cache the one-shot commands run through: the server's
/// [`ResultCache`] (outcome memory tier + rendered-byte tier), backed
/// by the `--cache-dir` disk store when given — so a result synthesized
/// by any surface (CLI, `ezrt serve`, `ezrt batch`) is reused by every
/// other, and `--cache-max-bytes` garbage-collects the shared
/// directory on open and after writes.
fn artifact_cache(
    cache_dir: Option<&str>,
    cache_max_bytes: Option<u64>,
) -> Result<ResultCache, String> {
    let tier = match cache_dir {
        Some(dir) => Some(DiskTier::open_with_budget(dir, cache_max_bytes)?),
        None => None,
    };
    // A one-shot process holds few outcomes; the tiers are sized for
    // one spec and its artifacts.
    Ok(ResultCache::with_disk(16, 1, tier))
}

/// Obtains the synthesis outcome for `project` through the shared
/// artifact pipeline: the persistent store (when configured) is
/// consulted first — a prior run by any surface is reused without
/// re-searching — and fresh results are written back; otherwise the
/// outcome is computed by the exact code the server's cache runs on a
/// miss.
fn cached_outcome(cache: &ResultCache, project: &Project) -> Arc<SynthesisOutcome> {
    let digest = project_digest(project);
    let (outcome, _lookup) = cache.get_or_compute(digest, || compute_outcome(project, digest));
    outcome
}

/// The `feasible: false` exit path shared by the artifact commands —
/// the render layer's own message, so `schedule`/`gantt` say exactly
/// what `table`/`codegen`/`pnml` (and the HTTP 409) say.
fn infeasible_error(outcome: &SynthesisOutcome) -> String {
    ezrealtime::artifacts::RenderError::Infeasible {
        error: outcome.error.clone(),
    }
    .to_string()
}

/// Renders one artifact of the synthesized (or cache-revived) outcome
/// to stdout — `ezrt table`, `ezrt pnml`, `ezrt codegen` and the
/// default-window `ezrt gantt` all land here, emitting byte-identical
/// output to the corresponding HTTP artifact endpoint (and going
/// through the same rendered-byte tier).
fn artifact(project: &Project, kind: ArtifactKind, cache: &ResultCache) -> Result<(), String> {
    let outcome = cached_outcome(cache, project);
    let artifact = cache
        .render_artifact(&outcome, kind)
        .map_err(|error| error.to_string())?;
    // Every artifact is UTF-8 text by construction.
    print!("{}", String::from_utf8_lossy(&artifact.bytes));
    Ok(())
}

/// Resolves `--warm-from <file|digest>` to the ancestor outcome whose
/// schedule prefix seeds this run's search. A 48-hex argument is a
/// digest looked up in the (memory or `--cache-dir`) cache — absence
/// warns to stderr and runs cold, so scripted edit loops never fail on
/// an evicted ancestor. Anything else is a spec file: it is synthesized
/// through the same cache (a prior run is revived, not re-searched)
/// under the same scheduler config, then used as the ancestor.
fn warm_from_ancestor(
    cache: &ResultCache,
    project: &Project,
    warm_from: &str,
) -> Result<Option<Arc<SynthesisOutcome>>, String> {
    if let Some(digest) = SpecDigest::from_hex(warm_from) {
        match cache.lookup(digest) {
            Some((outcome, _)) if outcome.solution.is_some() => return Ok(Some(outcome)),
            Some(_) => {
                eprintln!("ezrt: --warm-from {warm_from} holds no feasible schedule; running cold");
                return Ok(None);
            }
            None => {
                eprintln!("ezrt: --warm-from {warm_from} is not in the cache; running cold");
                return Ok(None);
            }
        }
    }
    let document = std::fs::read_to_string(warm_from)
        .map_err(|e| format!("cannot read --warm-from {warm_from}: {e}"))?;
    let previous = Project::from_dsl(&document)
        .map_err(|e| format!("{warm_from}: {e}"))?
        .with_config(project.config().clone());
    let outcome = cached_outcome(cache, &previous);
    if outcome.solution.is_none() {
        eprintln!("ezrt: --warm-from {warm_from} has no feasible schedule; running cold");
        return Ok(None);
    }
    Ok(Some(outcome))
}

fn schedule(
    project: &Project,
    json: bool,
    cache: &ResultCache,
    warm_from: Option<&str>,
) -> Result<(), String> {
    // The digest is the cache key of `ezrt serve` and the join key
    // across schedule/batch/server outputs; it covers the parsed spec
    // plus the result-relevant scheduler knobs (never `--jobs`).
    let ancestor = match warm_from {
        Some(source) => warm_from_ancestor(cache, project, source)?,
        None => None,
    };
    let outcome = match ancestor {
        Some(ancestor) => {
            let digest = project_digest(project);
            let (outcome, _) = cache.get_or_compute(digest, || {
                compute_outcome_incremental(project, digest, &ancestor)
            });
            outcome
        }
        None => cached_outcome(cache, project),
    };
    if json {
        // Hand-rolled JSON (the workspace builds offline, without
        // serde): one flat object so bench trajectories can be scripted
        // with jq — rendered by the same `ezrt_artifacts::report` code
        // the HTTP service uses, so the two outputs are byte-identical.
        // The scripting contract holds on failure too: one JSON object
        // on stdout (feasible: false plus the search counters), the
        // human-readable diagnostic on stderr, a nonzero exit.
        println!("{}", report::render_pretty(&outcome.fields));
        if !outcome.feasible {
            return Err(infeasible_error(&outcome));
        }
        return Ok(());
    }
    let Some(solution) = outcome.solution.as_ref() else {
        return Err(infeasible_error(&outcome));
    };
    let violations = outcome
        .fields
        .iter()
        .find(|(key, _)| *key == "violations")
        .map(|(_, value)| value.as_str())
        .unwrap_or("0");
    println!("feasible schedule found");
    println!("  spec digest      {}", outcome.digest);
    println!("  firings          {}", solution.schedule().firings().len());
    println!("  makespan         {}", solution.schedule().makespan());
    println!("  states visited   {}", outcome.stats.states_visited);
    println!("  minimum states   {}", outcome.stats.minimum_states());
    println!("  overhead ratio   {:.4}", outcome.stats.overhead_ratio());
    println!("  backtracks       {}", outcome.stats.backtracks);
    println!("  elapsed          {:?}", outcome.stats.elapsed);
    println!("  jobs             {}", outcome.stats.jobs);
    println!("  steals           {}", outcome.stats.steals);
    println!("  validator        {violations} violation(s)");
    if violations != "0" {
        // A nonzero count signals a kernel bug; name the constraints.
        for violation in solution.validate() {
            println!("    {violation}");
        }
    }
    Ok(())
}

fn gantt(
    project: &Project,
    from: Option<&String>,
    to: Option<&String>,
    cache: &ResultCache,
) -> Result<(), String> {
    // The no-argument form is the canonical `gantt` artifact; explicit
    // windows render the same timeline over a custom range.
    if from.is_none() && to.is_none() {
        return artifact(project, ArtifactKind::Gantt, cache);
    }
    let from = parse_number(from, 0)?;
    let default_to = (from + 120).min(project.spec().hyperperiod().max(from + 1));
    let to = parse_number(to, default_to)?;
    if to <= from {
        return Err("gantt window must be non-empty".to_owned());
    }
    let outcome = cached_outcome(cache, project);
    let Some(solution) = outcome.solution.as_ref() else {
        return Err(infeasible_error(&outcome));
    };
    print!("{}", solution.gantt_window(from, to));
    Ok(())
}

fn codegen(project: &Project, target: Option<&String>, cache: &ResultCache) -> Result<(), String> {
    // Target names are owned by `ArtifactKind::parse` — the same table
    // the HTTP `?target=` parameter goes through, so both surfaces
    // accept exactly the same spellings.
    let kind = match target {
        None => ArtifactKind::Codegen(Target::PosixSim),
        Some(target) => ArtifactKind::parse(&format!("codegen:{target}"))?,
    };
    artifact(project, kind, cache)
}

fn simulate(project: &Project, periods: Option<&String>) -> Result<(), String> {
    let periods = parse_number(periods, 1)?.max(1);
    let outcome = synthesize(project)?;
    let report = outcome.execute_for(periods);
    println!(
        "simulated {periods} schedule period(s), horizon {}",
        report.horizon
    );
    println!("  deadline misses  {}", report.deadline_misses.len());
    println!("  release jitter   {}", report.max_release_jitter());
    println!("  preemptions      {}", report.preemptions);
    println!("  context switches {}", report.context_switches);
    println!("  utilization      {:.3}", report.utilization());
    println!("  energy           {}", report.energy);
    for (task, stats) in &report.response {
        println!(
            "  {:<12} response min/mean/max = {}/{:.1}/{}",
            project.spec().task(*task).name(),
            stats.min,
            stats.mean(),
            stats.max
        );
    }
    Ok(())
}

/// `ezrt sweep spec.xml --grid "periods:100,150;deadlines:75,100"`:
/// expand the grid against the base spec and print the feasibility
/// frontier, one JSON row per point on stdout. Rows carry only
/// deterministic fields; the wall-clock / dedup summary goes to stderr
/// so two runs of the same sweep stay byte-identical on stdout.
fn sweep(project: &Project, grid: Option<&str>, cache: &ResultCache) -> Result<(), String> {
    let grid_text = grid.ok_or_else(|| {
        format!(
            "sweep requires --grid, e.g. --grid \"periods:100,150;deadlines:75,100\"\n{}",
            usage()
        )
    })?;
    let grid = SweepGrid::parse(grid_text)?;
    let started = std::time::Instant::now();
    // The global --jobs fans points out across threads; per-point
    // synthesis stays sequential inside run_sweep so the rows do not
    // depend on the fan-out width.
    let options = SweepOptions {
        fanout: project.config().parallelism,
        scheduler: project.config().clone(),
    };
    let report = run_sweep(project.spec(), &grid, &options, cache)?;
    print!("{}", report.render());
    eprintln!(
        "swept {} point(s): {} unique spec(s), {} feasible, {} invalid, base {} ({} ms)",
        report.rows.len(),
        report.unique_digests,
        report.feasible,
        report.invalid,
        report.base_digest.to_hex(),
        started.elapsed().as_millis()
    );
    Ok(())
}

fn compare(project: &Project) -> Result<(), String> {
    let spec = project.spec();
    println!(
        "{:<14} {:>8} {:>12} {:>14}",
        "scheduler", "misses", "preemptions", "ctx switches"
    );
    match project.synthesize() {
        Ok(outcome) => {
            let report = outcome.execute_for(1);
            println!(
                "{:<14} {:>8} {:>12} {:>14}",
                "pre-runtime",
                report.deadline_misses.len(),
                report.preemptions,
                report.context_switches
            );
        }
        Err(e) => println!("{:<14} {e}", "pre-runtime"),
    }
    for policy in OnlinePolicy::ALL {
        let report = simulate_online(spec, policy, 1);
        println!(
            "{:<14} {:>8} {:>12} {:>14}",
            policy.name(),
            report.execution.deadline_misses.len(),
            report.execution.preemptions,
            report.execution.context_switches
        );
    }
    Ok(())
}

fn analyze(project: &Project) -> Result<(), String> {
    use ezrealtime::sim::analysis;
    let spec = project.spec();
    for (pid, processor) in spec.processors() {
        let tasks_on: Vec<_> = spec.tasks().filter(|(_, t)| t.processor() == pid).collect();
        if tasks_on.is_empty() {
            continue;
        }
        println!("processor {}:", processor.name());
        let utilization = analysis::total_utilization(spec, pid);
        let bound = analysis::liu_layland_bound(tasks_on.len());
        println!("  utilization      {utilization:.3}");
        println!(
            "  liu-layland      {bound:.3} ({})",
            if utilization <= bound {
                "RM-schedulable by the sufficient bound"
            } else {
                "inconclusive for RM"
            }
        );
        match analysis::demand_bound_infeasible(spec, pid) {
            Some(t) => {
                println!("  demand bound     INFEASIBLE under any policy (h(t) > t at t = {t})")
            }
            None => println!("  demand bound     necessary condition holds"),
        }
        println!("  RTA (deadline-monotonic, preemptive):");
        for (task, verdict) in
            analysis::response_time_analysis(spec, pid, |t| spec.task(t).timing().deadline)
        {
            match verdict {
                Some(r) => println!(
                    "    {:<12} worst response {r} (deadline {})",
                    spec.task(task).name(),
                    spec.task(task).timing().deadline
                ),
                None => println!(
                    "    {:<12} DIVERGES (misses its deadline)",
                    spec.task(task).name()
                ),
            }
        }
    }
    Ok(())
}

fn invariants(project: &Project) -> Result<(), String> {
    use ezrealtime::tpn::invariants::place_invariants;
    let tasknet = project.translate();
    let net = tasknet.net();
    let report = place_invariants(net, 100_000);
    println!(
        "{} place invariant(s){}:",
        report.invariants.len(),
        if report.truncated {
            " (budget truncated)"
        } else {
            ""
        }
    );
    for invariant in &report.invariants {
        let terms: Vec<String> = invariant
            .support()
            .map(|(p, w)| {
                let name = net.place(p).name();
                if w == 1 {
                    name.to_owned()
                } else {
                    format!("{w}*{name}")
                }
            })
            .collect();
        println!("  {} = {}", terms.join(" + "), invariant.value(net));
    }
    Ok(())
}

fn parse_number(arg: Option<&String>, default: u64) -> Result<u64, String> {
    match arg {
        None => Ok(default),
        Some(text) => text
            .parse()
            .map_err(|_| format!("expected a number, found {text:?}")),
    }
}
