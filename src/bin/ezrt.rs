//! `ezrt` — the ezRealtime command-line tool.
//!
//! The original ezRealtime is an Eclipse GUI; this binary exposes the
//! same flow on the command line, reading `<rt:ez-spec>` XML documents
//! (paper Fig. 7) and driving the pipeline of Fig. 6:
//!
//! ```text
//! ezrt check     spec.xml             validate the specification
//! ezrt schedule  spec.xml             synthesize and report statistics
//! ezrt gantt     spec.xml [from to]   ASCII timeline of the schedule
//! ezrt table     spec.xml             the Fig. 8 schedule table
//! ezrt codegen   spec.xml [target]    emit C (posix_sim|generic|i8051|avr8|arm9|m68k|x86)
//! ezrt pnml      spec.xml             export the net as ISO 15909-2 PNML
//! ezrt dot       spec.xml             export the net as Graphviz DOT
//! ezrt simulate  spec.xml [periods]   execute on the simulated dispatcher
//! ezrt compare   spec.xml             pre-runtime vs online schedulers
//! ezrt analyze   spec.xml             utilization, demand-bound and RTA verdicts
//! ezrt invariants spec.xml            place invariants of the translated net
//! ```
//!
//! The global `--jobs N` flag runs the synthesis on `N` worker threads
//! (default 1, the sequential search); `ezrt schedule --json` emits the
//! search statistics as one flat JSON object for scripting.
//!
//! All output goes to stdout so results compose with shell pipelines;
//! diagnostics go to stderr and failures exit nonzero.

use ezrealtime::codegen::Target;
use ezrealtime::core::Project;
use ezrealtime::sim::{simulate_online, OnlinePolicy};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ezrt: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut args: Vec<String> = args.to_vec();
    let jobs = match take_option_value(&mut args, "--jobs")? {
        Some(value) => value
            .parse::<usize>()
            .ok()
            .filter(|&jobs| jobs >= 1)
            .ok_or_else(|| format!("--jobs expects a positive number, found {value:?}"))?,
        None => 1,
    };
    let json = take_flag(&mut args, "--json");

    let Some(command) = args.first() else {
        return Err(usage());
    };
    if command == "--help" || command == "-h" || command == "help" {
        println!("{}", usage());
        return Ok(());
    }
    if json && command != "schedule" {
        return Err("--json is only supported by `ezrt schedule`".to_owned());
    }
    let path = args.get(1).ok_or_else(usage)?;
    let document = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let project = Project::from_dsl(&document)
        .map_err(|e| format!("{path}: {e}"))?
        .with_jobs(jobs);

    match command.as_str() {
        "check" => check(&project),
        "schedule" => schedule(&project, json),
        "gantt" => gantt(&project, args.get(2), args.get(3)),
        "table" => table(&project),
        "codegen" => codegen(&project, args.get(2)),
        "pnml" => {
            let outcome = synthesize(&project)?;
            println!("{}", outcome.to_pnml());
            Ok(())
        }
        "dot" => {
            println!(
                "{}",
                ezrealtime::tpn::dot::to_dot(project.translate().net())
            );
            Ok(())
        }
        "simulate" => simulate(&project, args.get(2)),
        "compare" => compare(&project),
        "analyze" => analyze(&project),
        "invariants" => invariants(&project),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// Removes `--flag value` from `args`, returning the value when present.
fn take_option_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if at + 1 >= args.len() {
        return Err(format!("{flag} expects a value"));
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Ok(Some(value))
}

/// Removes a bare `--flag` from `args`, returning whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(at);
    true
}

fn usage() -> String {
    "usage: ezrt [--jobs N] <command> <spec.xml> [args]\n\
     commands:\n\
     \x20 check     validate the specification\n\
     \x20 schedule  synthesize the pre-runtime schedule and print statistics\n\
     \x20           (--json: machine-readable SearchStats on stdout)\n\
     \x20 gantt     [from to] print an ASCII timeline (default first 120 units)\n\
     \x20 table     print the schedule table as a C array (paper Fig. 8)\n\
     \x20 codegen   [target] emit scheduled C code (posix_sim|generic|i8051|avr8|arm9|m68k|x86)\n\
     \x20 pnml      export the synthesized time Petri net as PNML\n\
     \x20 dot       export the translated net as Graphviz DOT\n\
     \x20 simulate  [periods] execute the schedule on the simulated dispatcher\n\
     \x20 compare   pre-runtime synthesis vs online EDF/RM/DM baselines\n\
     \x20 analyze   analytical schedulability: utilization, demand bound, RTA\n\
     \x20 invariants place invariants (Farkas) of the translated Petri net\n\
     global flags:\n\
     \x20 --jobs N  synthesis worker threads (default 1 = sequential;\n\
     \x20           N > 1 races DFS subtrees, first feasible schedule wins)"
        .to_owned()
}

fn synthesize(project: &Project) -> Result<ezrealtime::core::Outcome, String> {
    project
        .synthesize()
        .map_err(|e| format!("schedule synthesis failed: {e}"))
}

fn check(project: &Project) -> Result<(), String> {
    let spec = project.spec();
    spec.validate().map_err(|e| e.to_string())?;
    println!(
        "ok: {} task(s), {} processor(s), {} message(s), hyperperiod {}",
        spec.task_count(),
        spec.processors().count(),
        spec.messages().count(),
        spec.hyperperiod()
    );
    println!(
        "   {} task instance(s) per schedule period",
        spec.total_instances()
    );
    for (pid, processor) in spec.processors() {
        let utilization = spec.utilization(pid);
        let verdict = if utilization > 1.0 {
            " (OVERLOADED)"
        } else {
            ""
        };
        println!(
            "   {}: utilization {:.3}{verdict}",
            processor.name(),
            utilization
        );
    }
    Ok(())
}

fn schedule(project: &Project, json: bool) -> Result<(), String> {
    let outcome = match project.synthesize() {
        Ok(outcome) => outcome,
        Err(error) => {
            // The scripting contract holds on failure too: one JSON
            // object on stdout (feasible: false plus the search
            // counters), the human-readable diagnostic on stderr, and a
            // nonzero exit either way.
            if json {
                let stats = error.stats();
                println!("{{");
                println!("  \"feasible\": false,");
                println!("  \"error\": \"{}\",", json_escape(&error.to_string()));
                println!("  \"states_visited\": {},", stats.states_visited);
                println!("  \"dead_states\": {},", stats.dead_states);
                println!("  \"peak_dead_set_bytes\": {},", stats.dead_set_bytes);
                println!("  \"states_per_second\": {:.1},", stats.states_per_second());
                println!(
                    "  \"wall_time_ms\": {:.3},",
                    stats.elapsed.as_secs_f64() * 1e3
                );
                println!("  \"jobs\": {},", stats.jobs);
                println!("  \"steals\": {}", stats.steals);
                println!("}}");
            }
            return Err(format!("schedule synthesis failed: {error}"));
        }
    };
    let violations = outcome.validate();
    if json {
        // Hand-rolled JSON (the workspace builds offline, without serde):
        // one flat object so bench trajectories can be scripted with jq.
        let stats = &outcome.stats;
        println!("{{");
        println!("  \"feasible\": true,");
        println!("  \"firings\": {},", outcome.schedule.firings().len());
        println!("  \"makespan\": {},", outcome.schedule.makespan());
        println!("  \"states_visited\": {},", stats.states_visited);
        println!("  \"minimum_states\": {},", stats.minimum_states());
        println!("  \"overhead_ratio\": {:.6},", stats.overhead_ratio());
        println!("  \"backtracks\": {},", stats.backtracks);
        println!("  \"pruned_misses\": {},", stats.pruned_misses);
        println!("  \"pruned_dead\": {},", stats.pruned_dead);
        println!("  \"dead_states\": {},", stats.dead_states);
        println!("  \"peak_dead_set_bytes\": {},", stats.dead_set_bytes);
        println!("  \"states_per_second\": {:.1},", stats.states_per_second());
        println!(
            "  \"wall_time_ms\": {:.3},",
            stats.elapsed.as_secs_f64() * 1e3
        );
        println!("  \"jobs\": {},", stats.jobs);
        println!("  \"steals\": {},", stats.steals);
        println!("  \"violations\": {}", violations.len());
        println!("}}");
        return Ok(());
    }
    println!("feasible schedule found");
    println!("  firings          {}", outcome.schedule.firings().len());
    println!("  makespan         {}", outcome.schedule.makespan());
    println!("  states visited   {}", outcome.stats.states_visited);
    println!("  minimum states   {}", outcome.stats.minimum_states());
    println!("  overhead ratio   {:.4}", outcome.stats.overhead_ratio());
    println!("  backtracks       {}", outcome.stats.backtracks);
    println!("  elapsed          {:?}", outcome.stats.elapsed);
    println!("  jobs             {}", outcome.stats.jobs);
    println!("  steals           {}", outcome.stats.steals);
    println!("  validator        {} violation(s)", violations.len());
    for violation in violations {
        println!("    {violation}");
    }
    Ok(())
}

fn gantt(project: &Project, from: Option<&String>, to: Option<&String>) -> Result<(), String> {
    let outcome = synthesize(project)?;
    let from = parse_number(from, 0)?;
    let default_to = (from + 120).min(project.spec().hyperperiod().max(from + 1));
    let to = parse_number(to, default_to)?;
    if to <= from {
        return Err("gantt window must be non-empty".to_owned());
    }
    print!("{}", outcome.gantt(from, to));
    Ok(())
}

fn table(project: &Project) -> Result<(), String> {
    let outcome = synthesize(project)?;
    print!("{}", outcome.table.to_c_array());
    Ok(())
}

fn codegen(project: &Project, target: Option<&String>) -> Result<(), String> {
    let target = match target.map(String::as_str) {
        None | Some("posix_sim") => Target::PosixSim,
        Some("generic") => Target::GenericBareMetal,
        Some("i8051") => Target::I8051,
        Some("avr8") => Target::Avr8,
        Some("arm9") => Target::Arm9,
        Some("m68k") => Target::M68k,
        Some("x86") => Target::X86Bare,
        Some(other) => return Err(format!("unknown target {other:?}")),
    };
    let outcome = synthesize(project)?;
    let code = outcome.generate_code(target);
    println!("/* ===== {} ===== */", code.header_name);
    println!("{}", code.header);
    println!("/* ===== {} ===== */", code.source_name);
    println!("{}", code.source);
    Ok(())
}

fn simulate(project: &Project, periods: Option<&String>) -> Result<(), String> {
    let periods = parse_number(periods, 1)?.max(1);
    let outcome = synthesize(project)?;
    let report = outcome.execute_for(periods);
    println!(
        "simulated {periods} schedule period(s), horizon {}",
        report.horizon
    );
    println!("  deadline misses  {}", report.deadline_misses.len());
    println!("  release jitter   {}", report.max_release_jitter());
    println!("  preemptions      {}", report.preemptions);
    println!("  context switches {}", report.context_switches);
    println!("  utilization      {:.3}", report.utilization());
    println!("  energy           {}", report.energy);
    for (task, stats) in &report.response {
        println!(
            "  {:<12} response min/mean/max = {}/{:.1}/{}",
            project.spec().task(*task).name(),
            stats.min,
            stats.mean(),
            stats.max
        );
    }
    Ok(())
}

fn compare(project: &Project) -> Result<(), String> {
    let spec = project.spec();
    println!(
        "{:<14} {:>8} {:>12} {:>14}",
        "scheduler", "misses", "preemptions", "ctx switches"
    );
    match project.synthesize() {
        Ok(outcome) => {
            let report = outcome.execute_for(1);
            println!(
                "{:<14} {:>8} {:>12} {:>14}",
                "pre-runtime",
                report.deadline_misses.len(),
                report.preemptions,
                report.context_switches
            );
        }
        Err(e) => println!("{:<14} {e}", "pre-runtime"),
    }
    for policy in OnlinePolicy::ALL {
        let report = simulate_online(spec, policy, 1);
        println!(
            "{:<14} {:>8} {:>12} {:>14}",
            policy.name(),
            report.execution.deadline_misses.len(),
            report.execution.preemptions,
            report.execution.context_switches
        );
    }
    Ok(())
}

fn analyze(project: &Project) -> Result<(), String> {
    use ezrealtime::sim::analysis;
    let spec = project.spec();
    for (pid, processor) in spec.processors() {
        let tasks_on: Vec<_> = spec.tasks().filter(|(_, t)| t.processor() == pid).collect();
        if tasks_on.is_empty() {
            continue;
        }
        println!("processor {}:", processor.name());
        let utilization = analysis::total_utilization(spec, pid);
        let bound = analysis::liu_layland_bound(tasks_on.len());
        println!("  utilization      {utilization:.3}");
        println!(
            "  liu-layland      {bound:.3} ({})",
            if utilization <= bound {
                "RM-schedulable by the sufficient bound"
            } else {
                "inconclusive for RM"
            }
        );
        match analysis::demand_bound_infeasible(spec, pid) {
            Some(t) => {
                println!("  demand bound     INFEASIBLE under any policy (h(t) > t at t = {t})")
            }
            None => println!("  demand bound     necessary condition holds"),
        }
        println!("  RTA (deadline-monotonic, preemptive):");
        for (task, verdict) in
            analysis::response_time_analysis(spec, pid, |t| spec.task(t).timing().deadline)
        {
            match verdict {
                Some(r) => println!(
                    "    {:<12} worst response {r} (deadline {})",
                    spec.task(task).name(),
                    spec.task(task).timing().deadline
                ),
                None => println!(
                    "    {:<12} DIVERGES (misses its deadline)",
                    spec.task(task).name()
                ),
            }
        }
    }
    Ok(())
}

fn invariants(project: &Project) -> Result<(), String> {
    use ezrealtime::tpn::invariants::place_invariants;
    let tasknet = project.translate();
    let net = tasknet.net();
    let report = place_invariants(net, 100_000);
    println!(
        "{} place invariant(s){}:",
        report.invariants.len(),
        if report.truncated {
            " (budget truncated)"
        } else {
            ""
        }
    );
    for invariant in &report.invariants {
        let terms: Vec<String> = invariant
            .support()
            .map(|(p, w)| {
                let name = net.place(p).name();
                if w == 1 {
                    name.to_owned()
                } else {
                    format!("{w}*{name}")
                }
            })
            .collect();
        println!("  {} = {}", terms.join(" + "), invariant.value(net));
    }
    Ok(())
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped
}

fn parse_number(arg: Option<&String>, default: u64) -> Result<u64, String> {
    match arg {
        None => Ok(default),
        Some(text) => text
            .parse()
            .map_err(|_| format!("expected a number, found {text:?}")),
    }
}
