//! # ezrealtime — meta-crate
//!
//! Umbrella crate for the ezRealtime workspace, a Rust reproduction of
//! *"ezRealtime: A Domain-Specific Modeling Tool for Embedded Hard Real-Time
//! Software Synthesis"* (Cruz, Barreto, Cordeiro, Maciel — DATE 2008).
//!
//! It re-exports every sub-crate under a stable name so applications can
//! depend on a single crate:
//!
//! * [`spec`] — the specification metamodel (paper Fig. 5): periodic tasks,
//!   timing constraints, PRECEDES/EXCLUDES relations, processors, messages.
//! * [`tpn`] — time Petri nets with priorities and code bindings, and their
//!   timed labelled transition system semantics (paper §3.1).
//! * [`compose`] — the building blocks (paper Figs. 1–4) and the
//!   specification→net translation.
//! * [`scheduler`] — pre-runtime schedule synthesis by depth-first search
//!   with partial-order reduction (paper §4.4.1).
//! * [`codegen`] — scheduled C code generation: schedule table, dispatcher
//!   and timer interrupt handler (paper §4.4.2, Fig. 8).
//! * [`sim`] — discrete-time execution of generated schedules plus online
//!   EDF/RM/DM baselines.
//! * [`dsl`] — the `<rt:ez-spec>` XML language (paper Fig. 7).
//! * [`pnml`] — PNML ISO/IEC 15909-2 interchange (paper §4.1).
//! * [`core`] — the end-to-end [`core::Project`] pipeline (paper Fig. 6).
//! * [`artifacts`] — the artifact layer: every output of a synthesis
//!   (report JSON, schedule table, generated C, Gantt, PNML) rendered
//!   as a pure function of one cached outcome, plus the disk-cache
//!   codec.
//! * [`server`] — the synthesis service: canonical spec digests, the
//!   singleflight result cache with its persistent disk tier, the
//!   std-only HTTP front end (`ezrt serve`, keep-alive, artifact
//!   endpoints) and batch fan-out (`ezrt batch`).
//!
//! # Quickstart
//!
//! ```
//! use ezrealtime::core::Project;
//! use ezrealtime::spec::{SpecBuilder, SchedulingMethod};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = SpecBuilder::new("demo")
//!     .task("sensor", |t| t.computation(1).deadline(4).period(5))
//!     .task("actuator", |t| t.computation(2).deadline(5).period(5))
//!     .precedes("sensor", "actuator")
//!     .build()?;
//!
//! let project = Project::new(spec);
//! let outcome = project.synthesize()?;
//! assert!(outcome.schedule.is_feasible());
//! # Ok(())
//! # }
//! ```

pub use ezrt_artifacts as artifacts;
pub use ezrt_codegen as codegen;
pub use ezrt_compose as compose;
pub use ezrt_core as core;
pub use ezrt_dsl as dsl;
pub use ezrt_obs as obs;
pub use ezrt_pnml as pnml;
pub use ezrt_scheduler as scheduler;
pub use ezrt_server as server;
pub use ezrt_sim as sim;
pub use ezrt_spec as spec;
pub use ezrt_tpn as tpn;
pub use ezrt_xml as xml;
