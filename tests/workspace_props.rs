//! Workspace-level property tests: the whole pipeline — translate,
//! search, timeline, table, DSL, PNML — holds its invariants on random
//! workloads.

use ezrealtime::codegen::ScheduleTable;
use ezrealtime::core::Project;
use ezrealtime::scheduler::SchedulerConfig;
use ezrealtime::spec::generate::{synthetic_spec, WorkloadConfig};
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = (WorkloadConfig, u64)> {
    (
        2usize..6,
        0.2f64..0.8,
        0.0f64..0.3,
        0.0f64..0.3,
        0.0f64..1.0,
        any::<u64>(),
    )
        .prop_map(|(tasks, util, prec, excl, preemptive, seed)| {
            (
                WorkloadConfig {
                    tasks,
                    total_utilization: util,
                    periods: vec![20, 40],
                    preemptive_fraction: preemptive,
                    precedence_probability: prec,
                    exclusion_probability: excl,
                    constrained_deadlines: true,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// End-to-end soundness: when the project synthesizes, the timeline
    /// validates, the table covers every execution part, and both
    /// serialization formats round trip.
    #[test]
    fn pipeline_invariants((config, seed) in workload()) {
        let spec = synthetic_spec(&config, seed);
        let project = Project::new(spec.clone()).with_config(SchedulerConfig {
            max_states: 200_000,
            ..SchedulerConfig::default()
        });
        let Ok(outcome) = project.synthesize() else {
            return Ok(()); // infeasible or over budget: nothing to check
        };

        // 1. Independent validation.
        let violations = outcome.validate();
        prop_assert!(violations.is_empty(), "seed {seed}: {violations:?}");

        // 2. Table ↔ timeline consistency (first processor).
        let cpu = spec.processors().next().unwrap().0;
        let table = ScheduleTable::from_timeline(&spec, &outcome.timeline);
        let parts = outcome
            .timeline
            .slices()
            .iter()
            .filter(|s| s.processor == cpu)
            .count();
        prop_assert_eq!(table.entries().len(), parts);

        // 3. Execution is timely and jitter-free over three periods.
        let report = outcome.execute_for(3);
        prop_assert!(report.is_timely());
        prop_assert_eq!(report.max_release_jitter(), 0);

        // 4. DSL round trip.
        let dsl = project.to_dsl();
        let reloaded = ezrealtime::dsl::from_xml(&dsl).expect("own dsl parses");
        prop_assert_eq!(&reloaded, &spec);

        // 5. PNML round trip of the synthesized net.
        let pnml = outcome.to_pnml();
        let net = ezrealtime::pnml::from_pnml(&pnml).expect("own pnml parses");
        prop_assert_eq!(net.place_count(), outcome.tasknet.net().place_count());
    }

    /// The searched state count never undercuts the forced minimum, and
    /// schedule length equals it exactly when no backtracking happened.
    #[test]
    fn search_accounting((config, seed) in workload()) {
        let spec = synthetic_spec(&config, seed);
        let project = Project::new(spec).with_config(SchedulerConfig {
            max_states: 200_000,
            ..SchedulerConfig::default()
        });
        if let Ok(outcome) = project.synthesize() {
            prop_assert!(outcome.stats.states_visited as u64 >= outcome.stats.minimum_states());
            if outcome.stats.backtracks == 0 {
                prop_assert_eq!(
                    outcome.stats.schedule_length as u64,
                    outcome.stats.minimum_firings
                );
            }
        }
    }
}
