//! End-to-end warm-restart smoke test of `ezrt serve --cache-dir`: boot
//! the real binary twice over one cache directory and assert the second
//! boot serves a previously synthesized spec from the disk tier with
//! **zero** synthesis calls (`cache_misses == 0` in `/v1/stats`) —
//! the CI warm-restart step runs this under `RUST_TEST_THREADS=1`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn request(addr: &str, method: &str, target: &str, body: &str) -> (u16, String) {
    let (status, _, body) = request_with(addr, method, target, &[], body);
    (status, body)
}

/// One `Connection: close` request with extra headers, returning
/// `(status, raw response head, body)`.
fn request_with(
    addr: &str,
    method: &str,
    target: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ezrt serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line");
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_owned(), body.to_owned())
}

/// Extracts one header's value from a raw response head.
fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    let prefix = format!("{name}: ");
    head.lines()
        .find_map(|line| line.strip_prefix(prefix.as_str()))
        .map(str::trim)
}

fn field<'a>(body: &'a str, key: &str) -> &'a str {
    let marker = format!("\"{key}\": ");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("missing {key} in {body}"))
        + marker.len();
    let rest = &body[start..];
    let end = rest.find('\n').unwrap_or(rest.len());
    rest[..end].trim_end().trim_end_matches(',')
}

/// Boots `ezrt serve --cache-dir <dir>` and returns the child, its
/// announced loopback address, and the stdout reader — which must stay
/// alive until the child exits: dropping it closes the pipe, and the
/// server's own shutdown banner would die on EPIPE.
fn boot(cache_dir: &str) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ezrt"))
        .args([
            "--cache-dir",
            cache_dir,
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ezrt serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in banner")
        .to_owned();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "unexpected banner {banner:?}"
    );
    (child, addr, stdout)
}

fn shutdown(mut child: Child, addr: &str, mut stdout: BufReader<std::process::ChildStdout>) {
    let (status, _) = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(exit) => {
                assert!(exit.success(), "serve exited with {exit:?}");
                let mut rest = String::new();
                stdout.read_to_string(&mut rest).expect("drain stdout");
                assert!(rest.contains("shut down cleanly"), "stdout tail: {rest:?}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("ezrt serve did not exit after /v1/shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn second_boot_serves_from_the_cache_dir_with_zero_misses() {
    let dir = std::env::temp_dir().join(format!("ezrt_warm_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().expect("utf-8 temp path").to_owned();
    let spec = ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::small_control());

    // Boot 1: a cold miss, persisted to the cache dir on the way out.
    // The response carries the strong validator for the re-request.
    let (child, addr, stdout) = boot(&dir_arg);
    let (status, cold_head, cold) = request_with(&addr, "POST", "/v1/schedule", &[], &spec);
    assert_eq!(status, 200);
    assert_eq!(field(&cold, "cache"), "\"miss\"");
    let digest = field(&cold, "spec_digest").trim_matches('"').to_owned();
    let etag = header(&cold_head, "ETag").expect("etag").to_owned();
    assert_eq!(etag, format!("\"{digest}:report-json\""));
    shutdown(child, &addr, stdout);

    // Boot 2, first contact: a conditional re-request with boot 1's
    // validator. The restarted server answers 304 from the digest alone
    // — header-only, zero cache work, zero synthesis calls.
    let (child, addr, stdout) = boot(&dir_arg);
    let (status, cond_head, cond_body) = request_with(
        &addr,
        "POST",
        "/v1/schedule",
        &[("If-None-Match", &etag)],
        &spec,
    );
    assert_eq!(status, 304, "{cond_head}");
    assert!(cond_body.is_empty(), "a 304 carries no body");
    assert_eq!(header(&cond_head, "ETag"), Some(etag.as_str()));
    let (_, stats) = request(&addr, "GET", "/v1/stats", "");
    assert_eq!(field(&stats, "not_modified"), "1", "{stats}");
    assert_eq!(
        field(&stats, "cache_misses"),
        "0",
        "the 304 must not have synthesized: {stats}"
    );
    assert_eq!(
        field(&stats, "cache_disk_hits"),
        "0",
        "the 304 must not even have touched the disk tier: {stats}"
    );

    // Boot 2, full fetch: the same spec revives from disk — zero
    // synthesis calls.
    let (status, warm) = request(&addr, "POST", "/v1/schedule", &spec);
    assert_eq!(status, 200);
    assert_eq!(field(&warm, "cache"), "\"disk\"");
    assert_eq!(
        cold.replace("\"cache\": \"miss\"", ""),
        warm.replace("\"cache\": \"disk\"", ""),
        "the warm boot serves the cold boot's outcome verbatim"
    );
    // Artifacts of the persisted digest are available immediately.
    let (status, table) = request(&addr, "GET", &format!("/v1/artifact/{digest}/table"), "");
    assert_eq!(status, 200);
    assert!(
        table.starts_with("struct ScheduleItem scheduleTable"),
        "{table}"
    );
    let (_, stats) = request(&addr, "GET", "/v1/stats", "");
    assert_eq!(field(&stats, "cache_misses"), "0", "{stats}");
    let disk_hits: u64 = field(&stats, "cache_disk_hits").parse().expect("number");
    assert!(disk_hits >= 1, "{stats}");
    shutdown(child, &addr, stdout);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_pipelined_burst_gets_every_response_in_order() {
    let dir = std::env::temp_dir().join(format!("ezrt_pipeline_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().expect("utf-8 temp path").to_owned();
    let spec = ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::small_control());

    let (child, addr, stdout) = boot(&dir_arg);
    // Prime the digest so the burst's artifact GETs are pure cache work.
    let (status, primed) = request(&addr, "POST", "/v1/schedule", &spec);
    assert_eq!(status, 200);
    let digest = field(&primed, "spec_digest").trim_matches('"').to_owned();

    // Five requests in ONE write — four keep-alive, the last closing —
    // must come back as five in-order responses on the one connection.
    let mut burst = Vec::new();
    for target in [
        "/v1/healthz".to_owned(),
        format!("/v1/artifact/{digest}/table"),
        format!("/v1/artifact/{digest}/pnml"),
    ] {
        burst.extend_from_slice(
            format!("GET {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n")
                .as_bytes(),
        );
    }
    burst.extend_from_slice(
        format!(
            "POST /v1/schedule HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            spec.len()
        )
        .as_bytes(),
    );
    burst.extend_from_slice(spec.as_bytes());
    burst.extend_from_slice(
        b"GET /v1/stats HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );

    let mut stream = TcpStream::connect(&addr).expect("connect to ezrt serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream.write_all(&burst).expect("write burst");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read responses");

    assert_eq!(
        raw.matches("HTTP/1.1 200 OK").count(),
        5,
        "five pipelined requests, five responses: {raw}"
    );
    // One distinctive marker per response, found in request order.
    let markers = [
        "\"ok\"",              // healthz
        "struct ScheduleItem", // table artifact
        "<pnml",               // pnml artifact
        "\"spec_digest\"",     // schedule report
        "\"connections\"",     // stats
    ];
    let mut last = 0;
    for marker in markers {
        let at = raw[last..]
            .find(marker)
            .unwrap_or_else(|| panic!("{marker} out of order in {raw}"));
        last += at + marker.len();
    }
    // All five responses rode the single connection.
    let stats_body = &raw[raw.rfind("\r\n\r\n").expect("stats body") + 4..];
    assert_eq!(field(stats_body, "connections"), "2", "{stats_body}");

    shutdown(child, &addr, stdout);
    let _ = std::fs::remove_dir_all(&dir);
}
