//! The artifact-pipeline acceptance tests: `ezrt table`, `ezrt
//! codegen`, `ezrt gantt` and `ezrt pnml` stdout must be byte-identical
//! to the corresponding HTTP artifact bodies for the same spec digest —
//! both when each surface synthesizes independently (the renderers are
//! pure functions of a deterministic outcome) and when they share one
//! `--cache-dir` store (then even the timing-bearing report JSON is
//! byte-identical, because it is one persisted outcome).

use ezrealtime::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn ezrt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ezrt"))
}

struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("ezrt_artifacts_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("temp dir");
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// One request over a fresh connection; returns `(status, body)`. The
/// body is read exactly by `Content-Length`, so artifact bytes come
/// back verbatim.
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line");
    let head_end = raw.find("\r\n\r\n").expect("header terminator") + 4;
    let content_length: usize = raw[..head_end]
        .lines()
        .find_map(|line| line.strip_prefix("Content-Length: "))
        .and_then(|value| value.trim().parse().ok())
        .expect("Content-Length");
    let body = raw[head_end..head_end + content_length].to_owned();
    (status, body)
}

fn cli_stdout(args: &[&str]) -> String {
    let output = ezrt().args(args).output().expect("ezrt runs");
    assert!(
        output.status.success(),
        "{args:?}: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("UTF-8 stdout")
}

#[test]
fn cli_artifacts_match_http_bodies_byte_for_byte() {
    let spec = ezrealtime::spec::corpus::small_control();
    let xml = ezrealtime::dsl::to_xml(&spec);
    let dir = TempDir::new("identity");
    let spec_path = dir.path.join("spec.xml");
    std::fs::write(&spec_path, &xml).expect("spec file");
    let spec_path = spec_path.to_str().unwrap();

    let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("server");
    let addr = server.addr();

    // Each surface synthesizes on its own; the artifact bytes must
    // still agree because rendering is a pure function of the
    // deterministic sequential outcome.
    for (cli_args, method, target) in [
        (&["table", spec_path][..], "POST", "/v1/table".to_owned()),
        (
            &["codegen", spec_path, "i8051"][..],
            "POST",
            "/v1/codegen?target=i8051".to_owned(),
        ),
        (
            &["codegen", spec_path][..],
            "POST",
            "/v1/codegen".to_owned(),
        ),
        (&["gantt", spec_path][..], "POST", "/v1/gantt".to_owned()),
    ] {
        let cli = cli_stdout(cli_args);
        let (status, http) = request(addr, method, &target, &xml);
        assert_eq!(status, 200, "{target}");
        assert_eq!(cli, http, "CLI {cli_args:?} vs HTTP {target}");
        assert!(!cli.is_empty(), "{cli_args:?}");
    }

    // The GET artifact route serves the same bytes for the now-cached
    // digest — including pnml, which has no POST endpoint.
    let project = ezrealtime::core::Project::from_dsl(&xml).expect("spec parses");
    let digest = ezrealtime::server::digest::project_digest(&project).to_hex();
    for (cli_args, kind) in [
        (&["table", spec_path][..], "table"),
        (&["codegen", spec_path, "i8051"][..], "codegen:i8051"),
        (&["gantt", spec_path][..], "gantt"),
        (&["pnml", spec_path][..], "pnml"),
    ] {
        let cli = cli_stdout(cli_args);
        let (status, http) = request(addr, "GET", &format!("/v1/artifact/{digest}/{kind}"), "");
        assert_eq!(status, 200, "{kind}");
        assert_eq!(cli, http, "CLI {cli_args:?} vs GET artifact {kind}");
    }

    server.stop();
}

#[test]
fn a_shared_cache_dir_joins_cli_and_server_outcomes() {
    let spec = ezrealtime::spec::corpus::small_control();
    let xml = ezrealtime::dsl::to_xml(&spec);
    let dir = TempDir::new("shared_store");
    let cache_dir = dir.path.join("store");
    let spec_path = dir.path.join("spec.xml");
    std::fs::write(&spec_path, &xml).expect("spec file");

    // The CLI synthesizes once and persists the outcome.
    let report = cli_stdout(&[
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "schedule",
        spec_path.to_str().unwrap(),
        "--json",
    ]);

    // A server over the same store serves the *same outcome*: even the
    // timing-bearing fields are byte-identical, because no second
    // synthesis ever ran.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            cache_dir: Some(cache_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let project = ezrealtime::core::Project::from_dsl(&xml).expect("spec parses");
    let digest = ezrealtime::server::digest::project_digest(&project).to_hex();
    let (status, body) = request(
        server.addr(),
        "GET",
        &format!("/v1/artifact/{digest}/report-json"),
        "",
    );
    assert_eq!(status, 200);
    assert_eq!(report, body, "one persisted outcome, two surfaces");

    // And the reverse join: a second CLI run revives the store entry
    // instead of re-searching, reproducing the identical report.
    let again = cli_stdout(&[
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "schedule",
        spec_path.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(report, again);

    // Schedule-derived artifacts flow from the same store entry.
    let table_cli = cli_stdout(&[
        "--cache-dir",
        cache_dir.to_str().unwrap(),
        "table",
        spec_path.to_str().unwrap(),
    ]);
    let (status, table_http) = request(server.addr(), "POST", "/v1/table", &xml);
    assert_eq!(status, 200);
    assert_eq!(table_cli, table_http);

    server.stop();
}

#[test]
fn cache_dir_is_rejected_outside_the_artifact_commands() {
    let dir = TempDir::new("misuse");
    let spec_path = dir.path.join("spec.xml");
    std::fs::write(
        &spec_path,
        ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::small_control()),
    )
    .expect("spec file");
    let output = ezrt()
        .args([
            "--cache-dir",
            dir.path.to_str().unwrap(),
            "check",
            spec_path.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(!output.status.success());
    assert!(String::from_utf8(output.stderr)
        .unwrap()
        .contains("--cache-dir is only supported"));
}

#[test]
fn windowed_gantt_still_works_and_matches_the_default_window() {
    let dir = TempDir::new("gantt_window");
    let spec_path = dir.path.join("spec.xml");
    std::fs::write(
        &spec_path,
        ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::small_control()),
    )
    .expect("spec file");
    let spec_path = spec_path.to_str().unwrap();
    let default = cli_stdout(&["gantt", spec_path]);
    // small_control's hyperperiod is 20 < 120, so the default window is
    // [0, 20) — the explicit form must render the same bytes.
    let explicit = cli_stdout(&["gantt", spec_path, "0", "20"]);
    assert_eq!(default, explicit);
}
