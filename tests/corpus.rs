//! Replays the checked-in regression corpus under `tests/corpus/` on
//! every test run. Each file is a canonical spec XML whose expected
//! verdict is encoded in its filename (`feasible__*` / `infeasible__*`);
//! a behaviour change in the parser, the digest, the search or the
//! simulator shows up here as a corpus divergence before it ships.

use ezrealtime::core::Project;
use ezrealtime::scheduler::{SchedulerConfig, SynthesizeError};
use ezrealtime::server::digest::project_digest;

#[test]
fn checked_in_corpus_replays_with_the_recorded_verdicts() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "xml"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 8,
        "corpus shrank to {} files — regenerate, don't delete",
        entries.len()
    );

    let config = SchedulerConfig {
        max_states: 200_000,
        ..SchedulerConfig::default()
    };
    for path in entries {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let expect_feasible = match name.split_once("__") {
            Some(("feasible", _)) => true,
            Some(("infeasible", _)) => false,
            _ => panic!("{name}: corpus files are named <verdict>__<label>.xml"),
        };
        let xml = std::fs::read_to_string(&path).expect("corpus file reads");

        // The stored document is canonical: print → parse is a fixed
        // point and the digest survives the trip.
        let project = Project::from_dsl(&xml)
            .unwrap_or_else(|e| panic!("{name}: no longer parses: {e}"))
            .with_config(config.clone());
        let reprinted = project.to_dsl();
        assert_eq!(reprinted, xml, "{name}: reprint is not byte-identical");
        let reparsed = Project::from_dsl(&reprinted).expect("own reprint parses");
        assert_eq!(
            project_digest(&project),
            project_digest(&reparsed.with_config(config.clone())),
            "{name}: digest moved across the roundtrip"
        );

        // The recorded verdict still holds, and feasible schedules
        // still satisfy the net-semantics oracle.
        match project.synthesize() {
            Ok(outcome) => {
                assert!(expect_feasible, "{name}: recorded infeasible, now feasible");
                let violations = outcome.validate();
                assert!(violations.is_empty(), "{name}: {violations:?}");
                ezrealtime::sim::replay::replay(&outcome.tasknet, &outcome.schedule)
                    .unwrap_or_else(|e| panic!("{name}: oracle rejects schedule: {e}"));
            }
            Err(SynthesizeError::Infeasible { .. }) => {
                assert!(
                    !expect_feasible,
                    "{name}: recorded feasible, now infeasible"
                );
            }
            Err(e) => panic!("{name}: search fell off a budget cliff: {e}"),
        }
    }
}
