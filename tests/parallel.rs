//! Workspace-level tests for the parallel synthesis engine: determinism
//! at one job, validation + replay acceptance at any job count, and
//! verdict agreement with the sequential search.

use ezrealtime::compose::translate;
use ezrealtime::scheduler::{
    synthesize, synthesize_parallel, Parallelism, SchedulerConfig, Timeline,
};
use ezrealtime::sim::replay::replay;
use ezrealtime::spec::corpus::{figure3_spec, figure4_spec, figure8_spec, small_control};
use ezrealtime::spec::generate::{synthetic_spec, WorkloadConfig};
use proptest::prelude::*;

fn config_with_jobs(jobs: usize) -> SchedulerConfig {
    SchedulerConfig {
        parallelism: Parallelism::new(jobs),
        ..SchedulerConfig::default()
    }
}

/// Every schedule the parallel engine returns — at every worker count —
/// must be accepted by both independent oracles: the specification-level
/// validator and the net-semantics replay.
#[test]
fn corpus_parallel_schedules_pass_validate_and_replay() {
    for spec in [
        figure3_spec(),
        figure4_spec(),
        figure8_spec(),
        small_control(),
    ] {
        let tasknet = translate(&spec);
        for jobs in [1usize, 2, 4] {
            let synthesis = synthesize_parallel(&tasknet, &config_with_jobs(jobs))
                .unwrap_or_else(|e| panic!("{} at {jobs} jobs: {e}", spec.name()));
            let timeline = Timeline::from_schedule(&tasknet, &synthesis.schedule);
            let violations = ezrealtime::scheduler::validate::check(&spec, &timeline);
            assert!(
                violations.is_empty(),
                "{} at {jobs} jobs: {violations:?}",
                spec.name()
            );
            let report = replay(&tasknet, &synthesis.schedule)
                .unwrap_or_else(|e| panic!("{} at {jobs} jobs: {e}", spec.name()));
            assert_eq!(report.firings, synthesis.schedule.firings().len());
            assert_eq!(report.makespan, synthesis.schedule.makespan());
            assert_eq!(synthesis.stats.jobs, jobs);
        }
    }
}

/// `--jobs 1` is the sequential path: byte-identical schedules and
/// identical counters (wall time aside).
#[test]
fn one_job_is_byte_identical_to_sequential_search() {
    for spec in [
        figure3_spec(),
        figure4_spec(),
        figure8_spec(),
        small_control(),
    ] {
        let tasknet = translate(&spec);
        let config = config_with_jobs(1);
        let parallel = synthesize_parallel(&tasknet, &config).expect("feasible");
        let sequential = synthesize(&tasknet, &config).expect("feasible");
        assert_eq!(parallel.schedule, sequential.schedule, "{}", spec.name());
        assert_eq!(
            parallel.stats.states_visited,
            sequential.stats.states_visited,
            "{}",
            spec.name()
        );
        assert_eq!(
            parallel.stats.backtracks,
            sequential.stats.backtracks,
            "{}",
            spec.name()
        );
        assert_eq!(
            parallel.stats.dead_states,
            sequential.stats.dead_states,
            "{}",
            spec.name()
        );
    }
}

/// Parallel and sequential searches agree on infeasibility (both exhaust
/// the same reachable space) including the diagnosed missed tasks.
#[test]
fn infeasibility_verdicts_agree_across_worker_counts() {
    let overload = ezrealtime::spec::SpecBuilder::new("overload")
        .task("x", |t| t.computation(3).deadline(4).period(4))
        .task("y", |t| t.computation(2).deadline(4).period(4))
        .build()
        .unwrap();
    let tasknet = translate(&overload);
    let sequential = synthesize(&tasknet, &config_with_jobs(1)).unwrap_err();
    let ezrealtime::scheduler::SynthesizeError::Infeasible {
        missed_tasks: expected,
        ..
    } = sequential
    else {
        panic!("sequential verdict should be infeasible");
    };
    for jobs in [2usize, 4] {
        let err = synthesize_parallel(&tasknet, &config_with_jobs(jobs)).unwrap_err();
        match err {
            ezrealtime::scheduler::SynthesizeError::Infeasible { missed_tasks, .. } => {
                assert_eq!(missed_tasks, expected, "{jobs} jobs");
            }
            other => panic!("expected infeasible at {jobs} jobs, got {other}"),
        }
    }
}

fn workload() -> impl Strategy<Value = (WorkloadConfig, u64)> {
    (
        2usize..6,
        0.2f64..0.8,
        0.0f64..0.3,
        0.0f64..0.3,
        any::<u64>(),
    )
        .prop_map(|(tasks, util, prec, excl, seed)| {
            (
                WorkloadConfig {
                    tasks,
                    total_utilization: util,
                    periods: vec![20, 40],
                    preemptive_fraction: 0.0,
                    precedence_probability: prec,
                    exclusion_probability: excl,
                    constrained_deadlines: true,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On random workloads, at 1, 2 and 4 workers: whenever the
    /// sequential search finds a schedule, the parallel engine also finds
    /// one, and every parallel schedule passes validate + replay.
    #[test]
    fn parallel_schedules_always_pass_both_oracles((config, seed) in workload()) {
        let spec = synthetic_spec(&config, seed);
        let tasknet = translate(&spec);
        let budget = SchedulerConfig {
            max_states: 100_000,
            ..SchedulerConfig::default()
        };
        let sequential = synthesize(&tasknet, &budget);
        for jobs in [1usize, 2, 4] {
            // Headroom over the sequential budget: the parallel engine
            // counts speculative exploration by all workers against
            // max_states, so an equal budget could abort a space the
            // sequential search solves within it.
            let config = SchedulerConfig {
                parallelism: Parallelism::new(jobs),
                max_states: 1_000_000,
                ..budget.clone()
            };
            let result = synthesize_parallel(&tasknet, &config);
            if let Ok(synthesis) = &result {
                let timeline = Timeline::from_schedule(&tasknet, &synthesis.schedule);
                let violations = ezrealtime::scheduler::validate::check(&spec, &timeline);
                prop_assert!(violations.is_empty(), "seed {seed} jobs {jobs}: {violations:?}");
                prop_assert!(
                    replay(&tasknet, &synthesis.schedule).is_ok(),
                    "seed {seed} jobs {jobs}: replay rejected"
                );
            }
            if sequential.is_ok() {
                // A feasible space must stay feasible under any worker
                // count (parallel explores a superset before giving up).
                prop_assert!(
                    result.is_ok(),
                    "seed {seed}: sequential feasible but {jobs} jobs failed: {:?}",
                    result.err().map(|e| e.to_string())
                );
            }
        }
    }
}
