//! End-to-end edit-loop smoke test of incremental synthesis over the
//! real binary: boot `ezrt serve`, synthesize the mine pump, nudge one
//! deadline in the XML, re-post — the miss for the edited spec must
//! warm-start from the first outcome (`incr_seed_hits == 1` in both the
//! response and `/v1/stats`) and visit strictly fewer states than the
//! cold run of the same edited spec. The CI edit-loop step runs this
//! under `RUST_TEST_THREADS=1`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn request(addr: &str, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ezrt serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn field<'a>(body: &'a str, key: &str) -> &'a str {
    let marker = format!("\"{key}\": ");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("missing {key} in {body}"))
        + marker.len();
    let rest = &body[start..];
    let end = rest.find('\n').unwrap_or(rest.len());
    rest[..end].trim_end().trim_end_matches(',')
}

fn boot() -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ezrt"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ezrt serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in banner")
        .to_owned();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "unexpected banner {banner:?}"
    );
    (child, addr, stdout)
}

fn shutdown(mut child: Child, addr: &str, mut stdout: BufReader<std::process::ChildStdout>) {
    let (status, _) = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(exit) => {
                assert!(exit.success(), "serve exited with {exit:?}");
                let mut rest = String::new();
                stdout.read_to_string(&mut rest).expect("drain stdout");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("ezrt serve did not exit after /v1/shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Loosens the first `<deadline>N</deadline>` by one time unit — the
/// smallest spec edit a design loop makes.
fn nudge_first_deadline(xml: &str) -> String {
    let key = "<deadline>";
    let at = xml.find(key).expect("a deadline element") + key.len();
    let end = at + xml[at..].find('<').expect("closing tag");
    let value: u64 = xml[at..end].trim().parse().expect("numeric deadline");
    format!("{}{}{}", &xml[..at], value + 1, &xml[end..])
}

#[test]
fn an_edited_spec_warm_starts_from_its_ancestor() {
    let spec = ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::mine_pump());
    let edited = nudge_first_deadline(&spec);
    assert_ne!(spec, edited);

    // Cold baseline for the *edited* spec, on its own server so no
    // ancestor exists: this is what the warm start must beat.
    let (child, addr, stdout) = boot();
    let (status, cold) = request(&addr, "POST", "/v1/schedule", &edited);
    assert_eq!(status, 200);
    assert_eq!(field(&cold, "cache"), "\"miss\"");
    assert_eq!(field(&cold, "incr_seed_hits"), "0");
    let cold_states: u64 = field(&cold, "states_visited").parse().expect("number");
    shutdown(child, &addr, stdout);

    // The edit loop: synthesize the original, then re-post the edited
    // spec. The structure digest is unchanged by a timing edit, so the
    // second miss finds the first outcome in the ancestor index and
    // seeds its search from the cached schedule prefix — no `warm=`
    // hint needed.
    let (child, addr, stdout) = boot();
    let (status, original) = request(&addr, "POST", "/v1/schedule", &spec);
    assert_eq!(status, 200);
    assert_eq!(field(&original, "feasible"), "true");
    assert_eq!(
        field(&original, "structure_digest"),
        field(&cold, "structure_digest"),
        "a timing edit must not move the structure digest"
    );

    let (status, warm) = request(&addr, "POST", "/v1/schedule", &edited);
    assert_eq!(status, 200);
    assert_eq!(field(&warm, "feasible"), "true");
    assert_eq!(field(&warm, "cache"), "\"miss\"");
    assert_eq!(field(&warm, "incr_seed_hits"), "1", "{warm}");
    let warm_states: u64 = field(&warm, "states_visited").parse().expect("number");
    assert!(
        warm_states < cold_states,
        "warm start must visit strictly fewer states: {warm_states} vs {cold_states}"
    );
    let replayed: u64 = field(&warm, "incr_replayed").parse().expect("number");
    assert!(replayed > 0, "{warm}");
    // `incr_states_saved` is measured against the *ancestor's* run.
    let ancestor_states: u64 = field(&original, "states_visited").parse().expect("number");
    let saved: u64 = field(&warm, "incr_states_saved").parse().expect("number");
    assert_eq!(saved, ancestor_states - warm_states, "{warm}");

    // The service counters aggregate the same story.
    let (_, stats) = request(&addr, "GET", "/v1/stats", "");
    assert_eq!(field(&stats, "incr_seed_hits"), "1", "{stats}");
    assert_eq!(
        field(&stats, "incr_replayed"),
        replayed.to_string(),
        "{stats}"
    );

    // An explicit warm hint behaves like the automatic lookup: the
    // digest of the original seeds a third, tightened variant.
    let digest = field(&original, "spec_digest").trim_matches('"').to_owned();
    let twice = nudge_first_deadline(&edited);
    let (status, hinted) = request(
        &addr,
        "POST",
        &format!("/v1/schedule?warm={digest}"),
        &twice,
    );
    assert_eq!(status, 200);
    assert_eq!(field(&hinted, "incr_seed_hits"), "1", "{hinted}");

    // A malformed hint is rejected before any synthesis.
    let (status, _) = request(&addr, "POST", "/v1/schedule?warm=xyz", &twice);
    assert_eq!(status, 400);

    shutdown(child, &addr, stdout);
}
