//! Incremental synthesis: structural sub-digests diff two specs
//! task-by-task, and a cached schedule prefix warm-starts the search on
//! the edited spec. These tests pin the two halves of the contract:
//! sub-digests are a function of content, not of XML accidents or task
//! order, and every warm-started result passes the same validator and
//! net-semantics oracle a cold result does.

use ezrealtime::artifacts::{project_digest, structure_digest, task_subdigests};
use ezrealtime::core::Project;
use ezrealtime::dsl::to_xml;
use ezrealtime::scheduler::SchedulerConfig;
use ezrealtime::spec::corpus::mine_pump;
use ezrealtime::spec::generate::{
    family_spec, random_mutation, synthetic_spec, Family, WorkloadConfig,
};
use ezrealtime::spec::{EzSpec, SpecBuilder};
use proptest::prelude::*;

/// A three-task spec with one precedence and one exclusion, built with
/// the tasks declared in the given order and `beta`'s deadline as
/// given — the knobs the structural-diff tests turn.
fn relational_spec(order: &[&str], beta_deadline: u64) -> EzSpec {
    let mut builder = SpecBuilder::new("reorder");
    for &name in order {
        builder = match name {
            "alpha" => builder.task("alpha", |t| t.computation(1).deadline(6).period(12)),
            "beta" => builder.task("beta", |t| {
                t.computation(2)
                    .deadline(beta_deadline)
                    .period(12)
                    .preemptive()
            }),
            "gamma" => builder.task("gamma", |t| t.computation(1).deadline(12).period(12)),
            other => panic!("unknown task {other}"),
        };
    }
    builder
        .precedes("alpha", "beta")
        .excludes("beta", "gamma")
        .build()
        .expect("valid spec")
}

/// Loosens the first `<deadline>N</deadline>` element in an XML
/// document by `delta` — the canonical one-task edit of the warm-start
/// tests.
fn nudge_first_deadline(xml: &str, delta: u64) -> String {
    let key = "<deadline>";
    let at = xml.find(key).expect("a deadline element") + key.len();
    let end = at + xml[at..].find('<').expect("closing tag");
    let value: u64 = xml[at..end].trim().parse().expect("numeric deadline");
    format!("{}{}{}", &xml[..at], value + delta, &xml[end..])
}

#[test]
fn subdigests_and_structure_are_invariant_under_task_reordering() {
    let orders: &[&[&str]] = &[
        &["alpha", "beta", "gamma"],
        &["gamma", "beta", "alpha"],
        &["beta", "gamma", "alpha"],
    ];
    let reference = Project::new(relational_spec(orders[0], 9));
    let mut expected = task_subdigests(&reference);
    expected.sort();
    for order in &orders[1..] {
        let project = Project::new(relational_spec(order, 9));
        let mut subdigests = task_subdigests(&project);
        subdigests.sort();
        assert_eq!(subdigests, expected, "order {order:?}");
        assert_eq!(structure_digest(&project), structure_digest(&reference));
    }
}

#[test]
fn subdigests_are_invariant_under_attribute_and_element_order() {
    let a = r##"<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime" name="attrs">
<Task identifier="a1" precedesTasks="#a2">
<name>one</name><period>10</period><computing>2</computing><deadline>8</deadline>
</Task>
<Task identifier="a2">
<name>two</name><period>10</period><computing>1</computing><deadline>10</deadline>
</Task>
</rt:ez-spec>"##;
    // The same document with attribute order swapped, child elements
    // shuffled and the tasks declared in the opposite order.
    let b = r##"<rt:ez-spec name="attrs" xmlns:rt="http://pnmp.sf.net/EZRealtime">
<Task identifier="a2">
<deadline>10</deadline><computing>1</computing><name>two</name><period>10</period>
</Task>
<Task precedesTasks="#a2" identifier="a1">
<computing>2</computing><deadline>8</deadline><period>10</period><name>one</name>
</Task>
</rt:ez-spec>"##;
    let a = Project::from_dsl(a).expect("attribute order a parses");
    let b = Project::from_dsl(b).expect("attribute order b parses");
    let mut subdigests_a = task_subdigests(&a);
    let mut subdigests_b = task_subdigests(&b);
    subdigests_a.sort();
    subdigests_b.sort();
    assert_eq!(subdigests_a, subdigests_b);
    assert_eq!(structure_digest(&a), structure_digest(&b));
}

#[test]
fn one_timing_edit_flips_exactly_that_subdigest() {
    let order = ["alpha", "beta", "gamma"];
    let before = Project::new(relational_spec(&order, 9));
    let after = Project::new(relational_spec(&order, 10));
    let old = task_subdigests(&before);
    let new = task_subdigests(&after);
    assert_eq!(old.len(), new.len());
    for ((old_name, old_digest), (new_name, new_digest)) in old.iter().zip(&new) {
        assert_eq!(old_name, new_name);
        if old_name == "beta" {
            assert_ne!(old_digest, new_digest, "beta's timing changed");
        } else {
            assert_eq!(old_digest, new_digest, "{old_name} is untouched");
        }
    }
    // Timing is structure-invariant, so the ancestor index still groups
    // the two specs — while the full digest (the cache key) separates
    // their outcomes.
    assert_eq!(structure_digest(&before), structure_digest(&after));
    assert_ne!(project_digest(&before), project_digest(&after));
    assert_eq!(before.changed_tasks(after.spec()), vec!["beta".to_owned()]);
    assert!(before.changed_tasks(before.spec()).is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// XML accidents — whitespace between attributes and around tags —
    /// never move any sub-digest or the structure digest.
    #[test]
    fn subdigests_survive_xml_whitespace_noise(
        tasks in 1usize..8,
        util in 0.2f64..0.8,
        prec in 0.0f64..0.4,
        excl in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let config = WorkloadConfig {
            tasks,
            total_utilization: util,
            precedence_probability: prec,
            exclusion_probability: excl,
            constrained_deadlines: true,
            ..WorkloadConfig::default()
        };
        let xml = to_xml(&synthetic_spec(&config, seed));
        let noisy = xml.replace("><", ">\n\t <").replace(" name=", "\n   name=");
        let original = Project::from_dsl(&xml).expect("own dsl reloads");
        let reparsed = Project::from_dsl(&noisy).expect("noisy dsl reloads");
        prop_assert_eq!(task_subdigests(&original), task_subdigests(&reparsed));
        prop_assert_eq!(structure_digest(&original), structure_digest(&reparsed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full edit loop on random workloads: a structured mutation of
    /// a generated spec, warm-started from the unmutated spec's
    /// schedule, (1) reports a diff inside the mutation's declared
    /// blast radius, (2) agrees with the cold search on the verdict,
    /// (3) never visits more states than the cold search, and (4) when
    /// feasible passes the validator and the net-semantics oracle.
    #[test]
    fn random_mutations_warm_start_soundly(
        tasks in 2usize..5,
        base_period in 10u64..24,
        utilization in 0.2f64..0.6,
        spec_seed in any::<u64>(),
        mutation_seed in any::<u64>(),
    ) {
        let family = Family::Harmonic { tasks, base_period, utilization };
        let base = family_spec(&family, spec_seed);
        let mutation = random_mutation(&base, mutation_seed);
        let Ok(mutated) = mutation.apply(&base) else {
            // A rejected edit (deadline window collapsed, …) is a valid
            // draw: the typed error is the whole contract.
            return Ok(());
        };
        let label = format!("spec {spec_seed} mutation {mutation:?}");

        // The reported diff stays inside the mutation's declared
        // blast radius.
        let config = SchedulerConfig { max_states: 200_000, ..SchedulerConfig::default() };
        let before = Project::new(base).with_config(config.clone());
        let after = Project::new(mutated).with_config(config);
        let changed = before.changed_tasks(after.spec());
        let touched = mutation.touched(before.spec());
        for task in &changed {
            prop_assert!(touched.contains(task), "{}: {} outside {:?}", label, task, touched);
        }

        let Ok(ancestor) = before.synthesize() else {
            return Ok(()); // no schedule to warm-start from
        };
        let cold = after.synthesize();
        let warm = after.synthesize_incremental(&ancestor.schedule);
        prop_assert_eq!(
            warm.is_ok(), cold.is_ok(),
            "{}: warm and cold verdicts diverge", label
        );
        match (warm, cold) {
            (Ok(warm), Ok(cold)) => {
                prop_assert!(
                    warm.stats.states_visited <= cold.stats.states_visited,
                    "{}: warm visited {} states, cold {}",
                    label, warm.stats.states_visited, cold.stats.states_visited
                );
                let violations = warm.validate();
                prop_assert!(violations.is_empty(), "{}: {:?}", label, violations);
                let replay = ezrealtime::sim::replay::replay(&warm.tasknet, &warm.schedule);
                prop_assert!(replay.is_ok(), "{}: oracle rejects warm schedule", label);
            }
            (Err(warm), Err(cold)) => {
                prop_assert_eq!(
                    std::mem::discriminant(&warm),
                    std::mem::discriminant(&cold),
                    "{}: failure kinds diverge: {} vs {}", label, warm, cold
                );
            }
            _ => unreachable!("verdict agreement asserted above"),
        }
    }
}

#[test]
fn unchanged_spec_replays_verbatim_with_zero_search_work() {
    let project = Project::new(mine_pump());
    let cold = project.synthesize().expect("feasible");
    let warm = project
        .synthesize_incremental(&cold.schedule)
        .expect("feasible");
    assert_eq!(warm.schedule, cold.schedule);
    assert_eq!(warm.stats.states_visited, 0);
    assert_eq!(warm.stats.incr_seed_hits, 1);
    assert_eq!(warm.stats.incr_replayed, cold.schedule.firings().len());
    assert!(warm.validate().is_empty());
}

#[test]
fn warm_start_after_a_deadline_edit_is_sound_and_no_costlier() {
    let previous = Project::new(mine_pump());
    let ancestor = previous.synthesize().expect("feasible");

    let edited_xml = nudge_first_deadline(&to_xml(previous.spec()), 1);
    let edited = Project::from_dsl(&edited_xml).expect("edited spec parses");
    assert_eq!(edited.changed_tasks(previous.spec()).len(), 1);

    let warm = edited
        .synthesize_incremental(&ancestor.schedule)
        .expect("feasible");
    // Soundness: the warm-started schedule satisfies the edited spec by
    // both oracles — the net-independent validator and a full replay
    // through the net semantics.
    assert!(warm.validate().is_empty());
    assert!(ezrealtime::sim::replay::replay(&warm.tasknet, &warm.schedule).is_ok());
    // Economy: the seed was accepted and the warm search visited no
    // more states than a cold one.
    let cold = edited.synthesize().expect("feasible");
    assert_eq!(warm.stats.incr_seed_hits, 1);
    assert!(warm.stats.incr_replayed > 0);
    assert!(warm.stats.states_visited <= cold.stats.states_visited);
}

#[test]
fn parallel_configs_fall_back_to_the_cold_path() {
    let project = Project::new(mine_pump()).with_jobs(2);
    let cold = project.synthesize().expect("feasible");
    let warm = project
        .synthesize_incremental(&cold.schedule)
        .expect("feasible");
    // The seeded search is sequential-only; a parallel config must take
    // the ordinary racing path and report no warm-start counters.
    assert_eq!(warm.stats.incr_seed_hits, 0);
    assert!(warm.validate().is_empty());
}
