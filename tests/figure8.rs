//! Exact reproduction of the paper's Fig. 8 schedule table.
//!
//! The paper prints a preemptive application with two instances of
//! TaskA, TaskB and TaskC and one of TaskD, whose execution parts are:
//!
//! ```c
//! struct ScheduleItem scheduleTable [SCHEDULE_SIZE] =
//! {{ 1, false, 1, (int *)TaskA}, /* A1 starts */
//!  { 4, false, 2, (int *)TaskB}, /* B1 preempts A1 */
//!  { 6, false, 3, (int *)TaskC}, /* C1 preempts B1 */
//!  { 8, true,  2, (int *)TaskB}, /* B1 resumes */
//!  {10, false, 4, (int *)TaskD}, /* D1 preempts B1 */
//!  {11, true,  2, (int *)TaskB}, /* B1 resumes */
//!  {13, true,  1, (int *)TaskA}, /* A1 resumes */
//!  {18, false, 1, (int *)TaskA}, /* A2 starts */
//!  {20, false, 3, (int *)TaskC}, /* C2 preempts A2 */
//!  {22, false, 2, (int *)TaskB}, /* B2 starts */
//!  {28, true,  1, (int *)TaskA}  /* A2 resumes */
//! };
//! ```
//!
//! We rebuild the execution parts as a timeline and check that the
//! schedule-table generator reproduces every row — start, flag, id,
//! function pointer and annotation.

use ezrealtime::codegen::ScheduleTable;
use ezrealtime::scheduler::{Slice, Timeline};
use ezrealtime::spec::{ProcessorId, SpecBuilder, TaskId};

/// The task set implied by the figure (timing chosen to cover the
/// printed execution parts; the table itself is what the test checks).
fn figure8_paper_spec() -> ezrealtime::spec::EzSpec {
    // Two instances of TaskA, TaskB and TaskC and one of TaskD inside a
    // schedule period of 34, as the paper describes the example.
    SpecBuilder::new("figure8-paper")
        .task("TaskA", |t| {
            t.computation(8).deadline(17).period(17).preemptive()
        })
        .task("TaskB", |t| {
            t.computation(6).deadline(17).period(17).preemptive()
        })
        .task("TaskC", |t| {
            t.computation(2).deadline(17).period(17).preemptive()
        })
        .task("TaskD", |t| {
            t.computation(1).deadline(34).period(34).preemptive()
        })
        .build()
        .expect("valid")
}

/// The execution parts read off the paper's table. Ends are implied by
/// the next dispatch of the same instance (A2's final part runs to 34).
fn paper_slices() -> Vec<Slice> {
    let cpu = ProcessorId::from_index(0);
    let slice = |task: usize, instance: u64, start: u64, end: u64, resumed: bool| Slice {
        task: TaskId::from_index(task),
        instance,
        processor: cpu,
        start,
        end,
        resumed,
    };
    vec![
        slice(0, 0, 1, 4, false),   // A1 starts
        slice(1, 0, 4, 6, false),   // B1 preempts A1
        slice(2, 0, 6, 8, false),   // C1 preempts B1
        slice(1, 0, 8, 10, true),   // B1 resumes
        slice(3, 0, 10, 11, false), // D1 preempts B1
        slice(1, 0, 11, 13, true),  // B1 resumes
        slice(0, 0, 13, 18, true),  // A1 resumes
        slice(0, 1, 18, 20, false), // A2 starts
        slice(2, 1, 20, 22, false), // C2 preempts A2
        slice(1, 1, 22, 28, false), // B2 starts
        slice(0, 1, 28, 34, true),  // A2 resumes
    ]
}

#[test]
fn schedule_table_reproduces_figure_8_rows() {
    let spec = figure8_paper_spec();
    let timeline = Timeline::from_slices(paper_slices(), 34);
    let table = ScheduleTable::from_timeline(&spec, &timeline);

    let expected: [(u64, bool, u8, &str, &str); 11] = [
        (1, false, 1, "TaskA", "A1 starts"),
        (4, false, 2, "TaskB", "B1 preempts A1"),
        (6, false, 3, "TaskC", "C1 preempts B1"),
        (8, true, 2, "TaskB", "B1 resumes"),
        (10, false, 4, "TaskD", "D1 preempts B1"),
        (11, true, 2, "TaskB", "B1 resumes"),
        (13, true, 1, "TaskA", "A1 resumes"),
        (18, false, 1, "TaskA", "A2 starts"),
        (20, false, 3, "TaskC", "C2 preempts A2"),
        (22, false, 2, "TaskB", "B2 starts"),
        (28, true, 1, "TaskA", "A2 resumes"),
    ];

    assert_eq!(table.entries().len(), expected.len());
    for (entry, (start, resumed, id, function, comment)) in table.entries().iter().zip(expected) {
        assert_eq!(entry.start, start, "row at {start}");
        assert_eq!(entry.resumed, resumed, "row at {start}");
        assert_eq!(entry.task_number, id, "row at {start}");
        assert_eq!(entry.function, function, "row at {start}");
        assert_eq!(entry.comment, comment, "row at {start}");
    }
}

#[test]
fn c_array_matches_figure_8_modulo_whitespace() {
    let spec = figure8_paper_spec();
    let timeline = Timeline::from_slices(paper_slices(), 34);
    let table = ScheduleTable::from_timeline(&spec, &timeline);
    let c = table.to_c_array();

    let paper_rows = [
        "{ 1, false, 1, (int *)TaskA}, /* A1 starts */",
        "{ 4, false, 2, (int *)TaskB}, /* B1 preempts A1 */",
        "{ 6, false, 3, (int *)TaskC}, /* C1 preempts B1 */",
        "{ 8, true, 2, (int *)TaskB}, /* B1 resumes */",
        "{10, false, 4, (int *)TaskD}, /* D1 preempts B1 */",
        "{11, true, 2, (int *)TaskB}, /* B1 resumes */",
        "{13, true, 1, (int *)TaskA}, /* A1 resumes */",
        "{18, false, 1, (int *)TaskA}, /* A2 starts */",
        "{20, false, 3, (int *)TaskC}, /* C2 preempts A2 */",
        "{22, false, 2, (int *)TaskB}, /* B2 starts */",
        "{28, true, 1, (int *)TaskA} /* A2 resumes */",
    ];
    // Compare whitespace-insensitively: the paper aligns columns with
    // single spaces, this generator pads them; the payload (fields and
    // annotation) must match row for row.
    let normalize = |s: &str| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
    let generated = normalize(&c);
    for row in paper_rows {
        let row = normalize(row);
        let (payload, comment) = row.split_once("/*").expect("row has a comment");
        let payload = payload.trim_end_matches([',', ';', '}']);
        assert!(
            generated.contains(payload),
            "missing payload {payload:?} in:\n{c}"
        );
        let comment = format!("/*{comment}");
        assert!(
            generated.contains(&comment),
            "missing comment {comment:?} in:\n{c}"
        );
    }
    assert!(c.starts_with("struct ScheduleItem scheduleTable [SCHEDULE_SIZE] ="));
}

#[test]
fn paper_slices_form_a_consistent_preemptive_schedule() {
    let spec = figure8_paper_spec();
    let timeline = Timeline::from_slices(paper_slices(), 34);
    // Slice accounting: A = 8, B = 6, C = 2, D = 1 per instance.
    for (task, info) in spec.tasks() {
        for instance in 0..spec.instances_of(task) {
            assert_eq!(
                timeline.instance_execution(task, instance),
                info.timing().computation,
                "{} instance {instance}",
                info.name()
            );
        }
    }
    assert_eq!(timeline.preemption_count(), 4, "four resumed parts");
}
