//! The §5 case study as an integration test: every number the paper
//! reports has its counterpart asserted here, up to the documented
//! block-encoding factor (see EXPERIMENTS.md).

use ezrealtime::core::Project;
use ezrealtime::scheduler::{BranchOrdering, SchedulerConfig};
use ezrealtime::sim::{simulate_online, OnlinePolicy};
use ezrealtime::spec::corpus::mine_pump;

#[test]
fn table_1_instance_accounting() {
    let spec = mine_pump();
    assert_eq!(spec.task_count(), 10, "10 tasks");
    assert_eq!(spec.hyperperiod(), 30_000);
    assert_eq!(spec.total_instances(), 782, "782 tasks' instances (§5)");
    // "at the beginning, all 10 tasks arrive at the same time"
    for (_, task) in spec.tasks() {
        assert_eq!(task.timing().phase, 0);
    }
}

#[test]
fn schedule_synthesis_reproduces_the_section_5_shape() {
    let outcome = Project::new(mine_pump()).synthesize().expect("feasible");
    // Paper: 3268 searched vs 3130 minimum (ratio 1.044). Our encoding
    // fires 6 transitions per instance instead of ~4, so counts are
    // larger, but the search must stay within a few percent of forced.
    assert_eq!(outcome.stats.minimum_states(), 782 * 6 + 2 + 1);
    assert!(
        outcome.stats.overhead_ratio() < 1.05,
        "ratio {} exceeds the paper's 1.044 shape",
        outcome.stats.overhead_ratio()
    );
    // The schedule really is minimal-length (pure forced firings).
    assert_eq!(
        outcome.stats.schedule_length as u64,
        outcome.stats.minimum_firings
    );
    // Modern hardware: well under the paper's 330 ms even in debug-ish
    // test profiles; keep a generous bound to stay robust on slow CI.
    assert!(outcome.stats.elapsed.as_secs() < 30);
}

#[test]
fn the_schedule_is_independently_valid_and_timely() {
    let outcome = Project::new(mine_pump()).synthesize().expect("feasible");
    assert!(outcome.validate().is_empty());
    let report = outcome.execute_for(2);
    assert!(report.is_timely());
    assert_eq!(report.max_release_jitter(), 0, "predictable: zero jitter");
    assert_eq!(report.preemptions, 0, "all tasks are non-preemptive");
    // Utilization from Table 1: 9 135 busy units per 30 000 period.
    assert!((report.utilization() - 9_135.0 / 30_000.0).abs() < 1e-9);
}

#[test]
fn fifo_ordering_also_solves_the_mine_pump_with_more_search() {
    let edf = Project::new(mine_pump()).synthesize().expect("feasible");
    let fifo = Project::new(mine_pump())
        .with_config(SchedulerConfig {
            ordering: BranchOrdering::Fifo,
            max_states: 2_000_000,
            ..SchedulerConfig::default()
        })
        .synthesize();
    if let Ok(fifo) = fifo {
        assert!(
            fifo.stats.states_visited >= edf.stats.states_visited,
            "EDF ordering should never search more than FIFO"
        );
    }
    // (FIFO may also exhaust its budget — that is itself the X3 result.)
}

#[test]
fn online_baselines_bracket_the_pre_runtime_result() {
    let spec = mine_pump();
    // Preemptive EDF and DM schedule it online; RM misses COH; greedy
    // non-preemptive EDF misses where the pre-runtime NP schedule works.
    assert!(simulate_online(&spec, OnlinePolicy::EdfPreemptive, 1).schedulable());
    assert!(simulate_online(&spec, OnlinePolicy::DmPreemptive, 1).schedulable());
    assert!(!simulate_online(&spec, OnlinePolicy::RmPreemptive, 1).schedulable());
    assert!(!simulate_online(&spec, OnlinePolicy::EdfNonPreemptive, 1).schedulable());
    // …and the pre-runtime non-preemptive schedule exists:
    assert!(Project::new(spec).synthesize().is_ok());
}

#[test]
fn schedule_table_covers_all_782_instances_in_order() {
    let outcome = Project::new(mine_pump()).synthesize().expect("feasible");
    let entries = outcome.table.entries();
    assert_eq!(entries.len(), 782);
    let mut last = 0;
    for entry in entries {
        assert!(entry.start >= last);
        last = entry.start;
        assert!(!entry.resumed, "non-preemptive tables have no resumes");
    }
    assert!(last <= 30_000);
}
