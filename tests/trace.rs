//! The `--trace` surface: span-tree determinism for the sequential
//! engine (same spec, same `--jobs 1` run → byte-identical tree
//! *structure*; durations of course vary) and the CLI contract that
//! `--trace` writes the tree to stderr while stdout stays the artifact
//! byte stream.

use std::process::Command;

fn ezrt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ezrt"))
}

fn spec_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/feasible__diamond.xml")
}

/// One traced sequential synthesis, returning the duration-free span
/// structure. In-process (not through the binary) so the tree is the
/// library's own, not filtered through CLI formatting.
fn traced_structure(document: &str) -> String {
    ezrealtime::obs::set_tracing(true);
    let project = ezrealtime::core::Project::from_dsl(document)
        .expect("corpus spec parses")
        .with_jobs(1);
    let outcome = project.synthesize().expect("corpus spec is feasible");
    drop(outcome);
    ezrealtime::obs::set_tracing(false);
    ezrealtime::obs::drain_spans().structure()
}

#[test]
fn sequential_span_tree_structure_is_deterministic() {
    let document = std::fs::read_to_string(spec_path()).expect("read corpus spec");
    let first = traced_structure(&document);
    assert!(
        first.contains("synthesize"),
        "missing synthesize span:\n{first}"
    );
    for child in ["translate", "search", "derive"] {
        assert!(first.contains(child), "missing {child} span:\n{first}");
    }
    let second = traced_structure(&document);
    assert_eq!(
        first, second,
        "the --jobs 1 span tree must be run-to-run identical"
    );
}

#[test]
fn cli_trace_prints_to_stderr_and_leaves_stdout_unchanged() {
    let spec = spec_path();
    let spec = spec.to_str().expect("utf-8 path");

    let plain = ezrt()
        .args(["table", spec])
        .output()
        .expect("ezrt table runs");
    assert!(plain.status.success());
    assert!(plain.stderr.is_empty(), "untraced runs keep stderr silent");

    let traced = ezrt()
        .args(["--trace", "table", spec])
        .output()
        .expect("ezrt --trace table runs");
    assert!(traced.status.success());
    // stdout is the artifact contract (shared byte-for-byte with the
    // HTTP surface): --trace must not perturb it. `table` output
    // carries no wall-clock fields, so the comparison is exact.
    assert_eq!(
        plain.stdout, traced.stdout,
        "--trace changed the artifact bytes"
    );
    let stderr = String::from_utf8(traced.stderr).expect("UTF-8 stderr");
    assert!(stderr.contains("ezrt trace:"), "{stderr}");
    for span in ["parse-dsl", "digest", "synthesize", "search", "render"] {
        assert!(stderr.contains(span), "missing {span} span in:\n{stderr}");
    }

    // serve is long-running and scrapes via /v1/metrics instead; the
    // flag combination is rejected up front.
    let refused = ezrt()
        .args(["--trace", "serve", "--addr", "127.0.0.1:0"])
        .output()
        .expect("ezrt --trace serve runs");
    assert!(!refused.status.success());
}
