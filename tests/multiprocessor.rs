//! End-to-end coverage of the metamodel's multi-processor and message
//! features (Fig. 5 allows `1..*` processors and messages over named
//! buses; the DATE paper evaluates mono-processor and leaves the rest
//! as future work — this reproduction implements it).

use ezrealtime::core::Project;
use ezrealtime::spec::SpecBuilder;

fn dual_node_spec() -> ezrealtime::spec::EzSpec {
    // A sensing node samples and transmits a frame over a CAN bus; a
    // control node receives it and actuates. Same period (validated),
    // bus arbitration 1 time unit, transfer 2.
    SpecBuilder::new("dual-node")
        .processor("sensor_mcu")
        .processor("control_mcu")
        .task("sample", |t| {
            t.computation(3)
                .deadline(10)
                .period(40)
                .on_processor("sensor_mcu")
        })
        .task("transmit", |t| {
            t.computation(2)
                .deadline(20)
                .period(40)
                .on_processor("sensor_mcu")
        })
        .task("actuate", |t| {
            t.computation(4)
                .deadline(40)
                .period(40)
                .on_processor("control_mcu")
        })
        .task("local_watch", |t| {
            t.computation(2)
                .deadline(10)
                .period(20)
                .on_processor("control_mcu")
        })
        .precedes("sample", "transmit")
        .message("frame", "transmit", "actuate", "can0", 1, 2)
        .build()
        .expect("valid multiprocessor spec")
}

#[test]
fn multiprocessor_schedule_synthesizes_and_validates() {
    let outcome = Project::new(dual_node_spec())
        .synthesize()
        .expect("feasible");
    assert!(outcome.validate().is_empty());

    let spec = outcome.spec().clone();
    // Tasks run on their own processors — the two MCUs overlap in time.
    let sensor = spec.processor_id("sensor_mcu").unwrap();
    let control = spec.processor_id("control_mcu").unwrap();
    assert!(outcome
        .timeline
        .slices()
        .iter()
        .any(|s| s.processor == sensor));
    assert!(outcome
        .timeline
        .slices()
        .iter()
        .any(|s| s.processor == control));

    // The message chain: actuate starts only after transmit finished
    // plus grant (1) plus transfer (2).
    let transmit = spec.task_id("transmit").unwrap();
    let actuate = spec.task_id("actuate").unwrap();
    let sent = outcome.timeline.instance_completion(transmit, 0).unwrap();
    let start = outcome.timeline.instance_start(actuate, 0).unwrap();
    assert!(
        start >= sent + 1 + 2,
        "actuate started at {start}, frame delivered at {}",
        sent + 3
    );
}

#[test]
fn per_processor_schedule_tables() {
    use ezrealtime::codegen::ScheduleTable;
    let outcome = Project::new(dual_node_spec())
        .synthesize()
        .expect("feasible");
    let spec = outcome.spec().clone();
    let sensor = spec.processor_id("sensor_mcu").unwrap();
    let control = spec.processor_id("control_mcu").unwrap();

    let sensor_table = ScheduleTable::from_timeline_for(&spec, &outcome.timeline, sensor);
    let control_table = ScheduleTable::from_timeline_for(&spec, &outcome.timeline, control);
    // sample + transmit on the sensor MCU; actuate + 2× local_watch on
    // the control MCU.
    assert_eq!(sensor_table.entries().len(), 2);
    assert_eq!(control_table.entries().len(), 3);
    // No task appears in the wrong table.
    for entry in sensor_table.entries() {
        assert_eq!(spec.task(entry.task).processor(), sensor);
    }
    for entry in control_table.entries() {
        assert_eq!(spec.task(entry.task).processor(), control);
    }
}

#[test]
fn parallel_execution_is_reflected_in_the_report() {
    let outcome = Project::new(dual_node_spec())
        .synthesize()
        .expect("feasible");
    let report = outcome.execute_for(2);
    assert!(report.is_timely());
    // Both processors contribute busy time:
    // (3+2) + 4 + 2×2 per period = 13 per 40-unit period.
    assert_eq!(report.busy_time, 2 * 13);
}

#[test]
fn bus_resource_serializes_competing_messages() {
    // Two frames on the same bus: transfers must not overlap even when
    // both senders finish simultaneously on different processors.
    let spec = SpecBuilder::new("bus-contention")
        .processor("a")
        .processor("b")
        .processor("c")
        .task("tx1", |t| {
            t.computation(2).deadline(10).period(30).on_processor("a")
        })
        .task("tx2", |t| {
            t.computation(2).deadline(10).period(30).on_processor("b")
        })
        .task("rx1", |t| {
            t.computation(1).deadline(30).period(30).on_processor("c")
        })
        .task("rx2", |t| {
            t.computation(1).deadline(30).period(30).on_processor("c")
        })
        .message("m1", "tx1", "rx1", "shared_bus", 0, 4)
        .message("m2", "tx2", "rx2", "shared_bus", 0, 4)
        .build()
        .expect("valid");
    let outcome = Project::new(spec).synthesize().expect("feasible");
    assert!(outcome.validate().is_empty());

    // With a 4-unit transfer each and one bus token, the second receiver
    // cannot start before 2 + 4 + 4 = 10.
    let spec = outcome.spec().clone();
    let rx1 = spec.task_id("rx1").unwrap();
    let rx2 = spec.task_id("rx2").unwrap();
    let s1 = outcome.timeline.instance_start(rx1, 0).unwrap();
    let s2 = outcome.timeline.instance_start(rx2, 0).unwrap();
    assert!(
        s1.max(s2) >= 10,
        "bus serialization violated: rx starts at {s1} and {s2}"
    );
}
