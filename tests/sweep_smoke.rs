//! End-to-end smoke test of the sweep surfaces against the real `ezrt`
//! binary: the CLI frontier is byte-identical across repeat runs and
//! fan-out widths, and `POST /v1/sweep` on a spawned `ezrt serve`
//! returns the very same rows — one determinism contract, two
//! transports. The CI sweep smoke step runs this file under
//! `RUST_TEST_THREADS=1`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

const GRID: &str = "periods:100,150;deadlines:75,100;jitter:0,2";

fn spec_path(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("small_control.xml");
    let xml = ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::small_control());
    std::fs::write(&path, xml).expect("write spec fixture");
    path
}

fn run_cli(spec: &std::path::Path, jobs: &str) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_ezrt"))
        .args(["--jobs", jobs, "sweep"])
        .arg(spec)
        .args(["--grid", GRID])
        .output()
        .expect("ezrt sweep runs");
    assert!(
        output.status.success(),
        "ezrt sweep failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 rows")
}

#[test]
fn cli_frontier_is_identical_across_runs_and_jobs() {
    let dir = std::env::temp_dir().join(format!("ezrt-sweep-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec = spec_path(&dir);

    let first = run_cli(&spec, "1");
    assert_eq!(first.lines().count(), 8, "{first}");
    assert!(first.contains("\"verdict\": "), "{first}");

    let second = run_cli(&spec, "1");
    assert_eq!(first, second, "two sequential runs diverged");
    let wide = run_cli(&spec, "4");
    assert_eq!(first, wide, "--jobs changed the frontier rows");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn http_sweep_matches_the_cli_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("ezrt-sweep-http-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec = spec_path(&dir);
    let cli_rows = run_cli(&spec, "2");

    let mut child = Command::new(env!("CARGO_BIN_EXE_ezrt"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ezrt serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in banner")
        .to_owned();

    let xml = std::fs::read_to_string(&spec).expect("spec fixture reads");
    let target = format!("/v1/sweep?grid={GRID}");
    let mut stream = TcpStream::connect(&addr).expect("connect to ezrt serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let head = format!(
        "POST {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        xml.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(xml.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let body = raw.split_once("\r\n\r\n").expect("head/body split").1;

    assert_eq!(
        body, cli_rows,
        "HTTP rows diverge from the CLI frontier for the same spec and grid"
    );

    let (_, _) = (child.kill(), child.wait());
    std::fs::remove_dir_all(&dir).ok();
}
