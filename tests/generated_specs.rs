//! Differential fuzzing over the generated spec families: every
//! synthesis backend — the value-typed reference kernel, the packed
//! production kernel, and the racing parallel search — must agree on
//! random workloads, and every feasible schedule must survive the
//! independent simulation oracle.
//!
//! The vendored proptest derives its RNG from the test name alone, so
//! these cases are byte-for-byte reproducible in CI with no seed
//! plumbing.

use ezrealtime::compose::translate;
use ezrealtime::core::Project;
use ezrealtime::scheduler::{
    synthesize, synthesize_parallel, synthesize_reference, synthesize_seeded, PorLevel,
    SchedulerConfig, SynthesizeError,
};
use ezrealtime::server::digest::project_digest;
use ezrealtime::sim::replay;
use ezrealtime::spec::generate::{family_spec, Family};
use ezrealtime::tpn::Parallelism;
use proptest::prelude::*;

/// Random members of every generated family, sized so a single case
/// synthesizes in milliseconds: 2–4 tasks over small periods.
fn family() -> impl Strategy<Value = (Family, u64)> {
    (0usize..6, 2usize..5, 8u64..24, 0.2f64..0.7, any::<u64>()).prop_map(
        |(kind, tasks, period, utilization, seed)| {
            let family = match kind {
                0 => Family::Harmonic {
                    tasks,
                    base_period: period,
                    utilization,
                },
                1 => Family::NearHarmonic {
                    tasks,
                    base_period: period,
                    utilization,
                },
                2 => Family::PrecedenceChain {
                    length: tasks,
                    period,
                    utilization,
                },
                3 => Family::PrecedenceDiamond {
                    width: tasks,
                    period: period * 4, // room for source + width + sink
                    utilization,
                },
                4 => Family::ExclusionClique {
                    tasks,
                    period: period * 2, // serialized tasks need slack
                    utilization,
                },
                _ => Family::Multiprocessor {
                    tasks,
                    processors: 1 + tasks % 2,
                    period,
                    utilization,
                },
            };
            (family, seed)
        },
    )
}

/// A budget generous enough that tiny specs always reach a real
/// verdict: budget exhaustion would otherwise let two backends
/// "diverge" merely by counting states differently near the cliff.
/// Byte-identity against the reference kernel is contracted at the
/// classic POR level (the only rule the reference implements); the
/// stubborn level gets its own soundness arm below.
fn config() -> SchedulerConfig {
    SchedulerConfig {
        max_states: 200_000,
        por: PorLevel::Classic,
        ..SchedulerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The packed kernel is observably identical to the reference
    /// kernel on random family members: byte-identical schedules and
    /// counters when feasible, matching verdicts and infeasibility
    /// proofs when not — and every feasible schedule replays through
    /// the simulation oracle.
    #[test]
    fn backends_agree_on_random_families((family, seed) in family()) {
        let spec = family_spec(&family, seed);
        let label = format!("{} seed {seed}", family.name());
        let tasknet = translate(&spec);
        let config = config();

        let packed = synthesize(&tasknet, &config);
        let reference = synthesize_reference(&tasknet, &config);
        match (&packed, &reference) {
            (Ok(packed), Ok(reference)) => {
                prop_assert_eq!(&packed.schedule, &reference.schedule, "{}: schedules", label);
                prop_assert_eq!(
                    packed.stats.states_visited,
                    reference.stats.states_visited,
                    "{}: states", label
                );
                prop_assert_eq!(
                    packed.stats.backtracks, reference.stats.backtracks,
                    "{}: backtracks", label
                );
                let report = replay(&tasknet, &packed.schedule)
                    .map_err(|e| format!("{label}: oracle rejects schedule: {e}"));
                prop_assert!(report.is_ok(), "{:?}", report);
            }
            (Err(packed), Err(reference)) => {
                prop_assert_eq!(
                    std::mem::discriminant(packed),
                    std::mem::discriminant(reference),
                    "{}: error kinds diverge: {} vs {}", label, packed, reference
                );
                if let (
                    SynthesizeError::Infeasible { missed_tasks: a, .. },
                    SynthesizeError::Infeasible { missed_tasks: b, .. },
                ) = (packed, reference)
                {
                    prop_assert_eq!(a, b, "{}: missed tasks", label);
                }
            }
            (packed, reference) => {
                prop_assert!(
                    false,
                    "{}: verdicts diverge: packed ok={} reference ok={}",
                    label, packed.is_ok(), reference.is_ok()
                );
            }
        }

        // Stubborn-set + sleep-set reduction must reach the same verdict
        // and infeasibility proof as the classic rule while never
        // visiting more states — and its schedules must satisfy the same
        // simulation oracle.
        let stubborn = synthesize(
            &tasknet,
            &SchedulerConfig { por: PorLevel::Stubborn, ..config.clone() },
        );
        match (&stubborn, &packed) {
            (Ok(stubborn), Ok(classic)) => {
                prop_assert!(
                    stubborn.stats.states_visited <= classic.stats.states_visited,
                    "{}: stubborn visited more states ({} vs {})",
                    label, stubborn.stats.states_visited, classic.stats.states_visited
                );
                let report = replay(&tasknet, &stubborn.schedule)
                    .map_err(|e| format!("{label}: oracle rejects stubborn schedule: {e}"));
                prop_assert!(report.is_ok(), "{:?}", report);
            }
            (Err(stubborn), Err(classic)) => {
                prop_assert_eq!(
                    std::mem::discriminant(stubborn),
                    std::mem::discriminant(classic),
                    "{}: stubborn error kind diverges: {} vs {}", label, stubborn, classic
                );
                if let (
                    SynthesizeError::Infeasible { missed_tasks: a, .. },
                    SynthesizeError::Infeasible { missed_tasks: b, .. },
                ) = (stubborn, classic)
                {
                    prop_assert_eq!(a, b, "{}: stubborn missed tasks", label);
                }
            }
            (stubborn, classic) => {
                prop_assert!(
                    false,
                    "{}: stubborn verdict diverges: stubborn ok={} classic ok={}",
                    label, stubborn.is_ok(), classic.is_ok()
                );
            }
        }

        // The shared expansion registry must keep the parallel stubborn
        // search sound: same verdict, oracle-clean schedules.
        let parallel_stubborn = synthesize_parallel(
            &tasknet,
            &SchedulerConfig {
                parallelism: Parallelism::new(3),
                por: PorLevel::Stubborn,
                ..config.clone()
            },
        );
        prop_assert_eq!(
            parallel_stubborn.is_ok(), packed.is_ok(),
            "{}: parallel stubborn verdict diverges", label
        );
        if let Ok(parallel_stubborn) = &parallel_stubborn {
            let report = replay(&tasknet, &parallel_stubborn.schedule)
                .map_err(|e| format!("{label}: oracle rejects parallel stubborn schedule: {e}"));
            prop_assert!(report.is_ok(), "{:?}", report);
        }

        // The racing parallel search may pick a different feasible
        // schedule, but never a different verdict — and whatever it
        // returns must satisfy the same oracle.
        let parallel = synthesize_parallel(
            &tasknet,
            &SchedulerConfig { parallelism: Parallelism::new(3), ..config.clone() },
        );
        prop_assert_eq!(
            parallel.is_ok(), packed.is_ok(),
            "{}: parallel verdict diverges", label
        );
        if let Ok(parallel) = &parallel {
            let report = replay(&tasknet, &parallel.schedule)
                .map_err(|e| format!("{label}: oracle rejects parallel schedule: {e}"));
            prop_assert!(report.is_ok(), "{:?}", report);
        }

        // Warm-starting a search with its own cold schedule is the
        // degenerate incremental case: a pure replay, zero fresh states,
        // the very same schedule back.
        if let Ok(cold) = &packed {
            let seeded = synthesize_seeded(&tasknet, &config, cold.schedule.firings());
            let seeded = seeded.map_err(|e| format!("{label}: self-seed failed: {e}"));
            prop_assert!(seeded.is_ok(), "{:?}", seeded);
            let seeded = seeded.unwrap();
            prop_assert_eq!(&seeded.schedule, &cold.schedule, "{}: self-seed schedule", label);
            prop_assert_eq!(seeded.stats.states_visited, 0, "{}: self-seed states", label);
        }
    }

    /// Print → parse is a fixed point on random family members: the
    /// reparsed spec is structurally equal, re-printing is
    /// byte-identical, and the canonical digest survives the trip.
    #[test]
    fn dsl_roundtrip_is_a_fixed_point((family, seed) in family()) {
        let spec = family_spec(&family, seed);
        let label = format!("{} seed {seed}", family.name());

        let xml = ezrealtime::dsl::to_xml(&spec);
        let reparsed = ezrealtime::dsl::from_xml(&xml)
            .map_err(|e| format!("{label}: own XML rejected: {e}"));
        prop_assert!(reparsed.is_ok(), "{:?}", reparsed);
        let reparsed = reparsed.unwrap();
        prop_assert_eq!(&reparsed, &spec, "{}: reparse differs", label);
        prop_assert_eq!(
            ezrealtime::dsl::to_xml(&reparsed), xml,
            "{}: reprint is not byte-identical", label
        );

        let before = Project::new(spec);
        let after = Project::new(reparsed);
        prop_assert_eq!(before.canonical_bytes(), after.canonical_bytes(), "{}", label);
        prop_assert_eq!(project_digest(&before), project_digest(&after), "{}", label);
    }
}
