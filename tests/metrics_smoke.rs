//! End-to-end observability smoke: boot the real `ezrt serve` binary
//! with an access log, drive three requests (miss, hit, healthz),
//! scrape `GET /v1/metrics`, validate the exposition with the checked-in
//! `scripts/check-prometheus.sh`, and validate the NDJSON access log —
//! the same sequence the CI smoke step runs under `RUST_TEST_THREADS=1`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn request(addr: &str, method: &str, target: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ezrt serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (status, head.to_owned(), body.to_owned())
}

fn wait_with_timeout(child: &mut Child, limit: Duration) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + limit;
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => return Some(status),
            None if Instant::now() >= deadline => return None,
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn metrics_scrape_and_access_log_survive_the_checker() {
    let dir = std::env::temp_dir().join(format!("ezrt_metrics_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("smoke dir");
    let log_path = dir.join("access.ndjson");

    let mut child = Command::new(env!("CARGO_BIN_EXE_ezrt"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--log-file",
            log_path.to_str().expect("utf-8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ezrt serve spawns");

    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in banner")
        .to_owned();

    // Three requests: a synthesis miss, the same spec again (hit), and
    // a healthz probe.
    let spec = ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::small_control());
    let (status, head, _) = request(&addr, "POST", "/v1/schedule", &spec);
    assert_eq!(status, 200);
    assert!(head.contains("X-Ezrt-Cache: miss"), "{head}");
    assert!(head.contains("X-Ezrt-Elapsed-Micros: "), "{head}");
    let (status, head, _) = request(&addr, "POST", "/v1/schedule", &spec);
    assert_eq!(status, 200);
    assert!(head.contains("X-Ezrt-Cache: hit"), "{head}");
    let (status, _, _) = request(&addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);

    // Scrape and hand the exposition to the checked-in validator.
    let (status, head, exposition) = request(&addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "{head}"
    );
    for family in [
        "ezrt_cache_hits_total 1",
        "ezrt_cache_misses_total 1",
        "ezrt_http_schedule_requests_total 2",
        "ezrt_search_runs_total",
        "ezrt_phase_search_micros_count 1",
    ] {
        assert!(exposition.contains(family), "missing {family} in scrape");
    }
    let exposition_path = dir.join("metrics.txt");
    std::fs::write(&exposition_path, &exposition).expect("write exposition");
    let checker =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts/check-prometheus.sh");
    let check = Command::new("bash")
        .arg(&checker)
        .arg(&exposition_path)
        .output()
        .expect("checker runs");
    assert!(
        check.status.success(),
        "check-prometheus.sh failed:\n{}",
        String::from_utf8_lossy(&check.stderr)
    );

    let (status, _, body) = request(&addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("shutting down"), "{body}");
    let exit = wait_with_timeout(&mut child, Duration::from_secs(30)).unwrap_or_else(|| {
        let _ = child.kill();
        panic!("ezrt serve did not exit after /v1/shutdown");
    });
    assert!(exit.success(), "serve exited with {exit:?}");

    // The access log holds one valid NDJSON line per routed request
    // (shutdown included), flushed by the clean exit.
    let log = std::fs::read_to_string(&log_path).expect("read access log");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(
        lines.len(),
        5,
        "miss, hit, healthz, metrics, shutdown: {log}"
    );
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for key in [
            "\"t_micros\":",
            "\"method\":",
            "\"path\":",
            "\"status\":200",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(lines[1].contains("\"cache\":\"hit\""), "{}", lines[1]);
    assert!(
        lines[3].contains("\"path\":\"/v1/metrics\""),
        "{}",
        lines[3]
    );

    let _ = std::fs::remove_dir_all(&dir);
}
