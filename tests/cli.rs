//! Integration tests for the `ezrt` command-line tool.

use std::process::Command;

fn ezrt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ezrt"))
}

fn spec_file() -> tempfile_lite::TempFile {
    let spec = ezrealtime::spec::corpus::small_control();
    let document = ezrealtime::dsl::to_xml(&spec);
    tempfile_lite::TempFile::with_content("spec.xml", &document)
}

/// A tiny self-contained temp-file helper (no external crates).
mod tempfile_lite {
    use std::path::PathBuf;

    pub struct TempFile {
        pub path: PathBuf,
    }

    impl TempFile {
        pub fn with_content(name: &str, content: &str) -> Self {
            use std::sync::atomic::{AtomicUsize, Ordering};
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "ezrt_cli_{}_{}_{}",
                std::process::id(),
                unique,
                name.replace('.', "_")
            ));
            std::fs::create_dir_all(&dir).expect("temp dir");
            let path = dir.join(name);
            let mut file = std::fs::File::create(&path).expect("temp file");
            use std::io::Write;
            file.write_all(content.as_bytes()).expect("write");
            TempFile { path }
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            if let Some(parent) = self.path.parent() {
                let _ = std::fs::remove_dir_all(parent);
            }
        }
    }
}

#[test]
fn check_reports_utilization() {
    let file = spec_file();
    let output = ezrt()
        .args(["check", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("4 task(s)"));
    assert!(stdout.contains("utilization"));
}

#[test]
fn schedule_prints_search_statistics() {
    let file = spec_file();
    let output = ezrt()
        .args(["schedule", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("feasible schedule found"));
    assert!(stdout.contains("states visited"));
    assert!(stdout.contains("0 violation(s)"));
}

#[test]
fn schedule_json_emits_machine_readable_stats() {
    let file = spec_file();
    let output = ezrt()
        .args(["schedule", file.path.to_str().unwrap(), "--json"])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    for key in [
        "\"feasible\": true",
        "\"states_visited\"",
        "\"states_per_second\"",
        "\"peak_dead_set_bytes\"",
        "\"wall_time_ms\"",
        "\"jobs\": 1",
        "\"steals\": 0",
        "\"violations\": 0",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    // Shape check: one flat object, balanced braces, no trailing comma.
    assert!(stdout.trim_start().starts_with('{'));
    assert!(stdout.trim_end().ends_with('}'));
    assert!(!stdout.contains(",\n}"));
}

#[test]
fn jobs_flag_runs_the_parallel_engine() {
    let file = spec_file();
    let output = ezrt()
        .args([
            "--jobs",
            "2",
            "schedule",
            file.path.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("\"jobs\": 2"), "{stdout}");
    assert!(stdout.contains("\"steals\":"), "{stdout}");
    assert!(stdout.contains("\"violations\": 0"), "{stdout}");

    let bad = ezrt()
        .args(["--jobs", "zero", "schedule", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
    assert!(String::from_utf8(bad.stderr).unwrap().contains("--jobs"));

    let misplaced = ezrt()
        .args(["check", file.path.to_str().unwrap(), "--json"])
        .output()
        .expect("runs");
    assert!(!misplaced.status.success());
    assert!(String::from_utf8(misplaced.stderr)
        .unwrap()
        .contains("only supported by"));
}

#[test]
fn table_emits_the_c_array() {
    let file = spec_file();
    let output = ezrt()
        .args(["table", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.starts_with("struct ScheduleItem scheduleTable"));
    assert!(stdout.contains("(int *)sense"));
}

#[test]
fn codegen_validates_targets() {
    let file = spec_file();
    let ok = ezrt()
        .args(["codegen", file.path.to_str().unwrap(), "i8051"])
        .output()
        .expect("runs");
    assert!(ok.status.success());
    assert!(String::from_utf8(ok.stdout)
        .unwrap()
        .contains("__interrupt(1)"));

    let bad = ezrt()
        .args(["codegen", file.path.to_str().unwrap(), "z80"])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
    assert!(String::from_utf8(bad.stderr)
        .unwrap()
        .contains("unknown target"));
}

#[test]
fn pnml_output_reimports() {
    let file = spec_file();
    let output = ezrt()
        .args(["pnml", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(ezrealtime::pnml::from_pnml(&stdout).is_ok());
}

#[test]
fn simulate_and_compare_run() {
    let file = spec_file();
    let output = ezrt()
        .args(["simulate", file.path.to_str().unwrap(), "3"])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("deadline misses  0"));

    let output = ezrt()
        .args(["compare", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("pre-runtime"));
    assert!(stdout.contains("edf-p"));
}

#[test]
fn gantt_window_arguments() {
    let file = spec_file();
    let output = ezrt()
        .args(["gantt", file.path.to_str().unwrap(), "0", "20"])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("sense"));
    assert!(stdout.contains('#'));

    let bad = ezrt()
        .args(["gantt", file.path.to_str().unwrap(), "9", "9"])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    // Missing file.
    let output = ezrt()
        .args(["check", "/nonexistent.xml"])
        .output()
        .expect("runs");
    assert!(!output.status.success());
    assert!(String::from_utf8(output.stderr)
        .unwrap()
        .contains("cannot read"));

    // Unknown command.
    let file = spec_file();
    let output = ezrt()
        .args(["frobnicate", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(!output.status.success());

    // No arguments: usage on stderr.
    let output = ezrt().output().expect("runs");
    assert!(!output.status.success());
    assert!(String::from_utf8(output.stderr).unwrap().contains("usage"));
}

#[test]
fn analyze_reports_schedulability_verdicts() {
    let file = spec_file();
    let output = ezrt()
        .args(["analyze", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("utilization"));
    assert!(stdout.contains("demand bound"));
    assert!(stdout.contains("RTA"));
    assert!(stdout.contains("worst response"));
}

#[test]
fn invariants_lists_resource_conservation_laws() {
    let file = spec_file();
    let output = ezrt()
        .args(["invariants", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    // small_control: the processor and one exclusion lock conserve.
    assert!(stdout.contains("pproc_cpu0"));
    assert!(stdout.contains("pexcl_"));
    assert!(stdout.contains("= 1"));
}

#[test]
fn repeated_flags_are_rejected() {
    let file = spec_file();
    for flags in [
        &["--jobs", "2", "--jobs", "4"][..],
        &["--jobs", "2", "--jobs", "2"][..],
    ] {
        let output = ezrt()
            .args(flags)
            .args(["schedule", file.path.to_str().unwrap()])
            .output()
            .expect("runs");
        assert!(!output.status.success(), "{flags:?} must be rejected");
        let stderr = String::from_utf8(output.stderr).unwrap();
        assert!(stderr.contains("--jobs may only be given once"), "{stderr}");
    }
}

#[test]
fn schedule_json_reports_the_spec_digest() {
    let file = spec_file();
    let output = ezrt()
        .args(["schedule", file.path.to_str().unwrap(), "--json"])
        .output()
        .expect("runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let fields = parse_flat_json(&stdout);
    let digest = &fields
        .iter()
        .find(|(key, _)| key == "spec_digest")
        .expect("spec_digest field")
        .1;
    let hex = digest.trim_matches('"');
    assert_eq!(hex.len(), 48, "{digest}");
    assert!(hex.chars().all(|c| c.is_ascii_hexdigit()), "{digest}");

    // The digest is stable across runs and across `--jobs` (it keys a
    // shared result cache), so outputs are join-able by it.
    let again = ezrt()
        .args([
            "--jobs",
            "2",
            "schedule",
            file.path.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("runs");
    let stdout = String::from_utf8(again.stdout).unwrap();
    assert!(
        stdout.contains(&format!("\"spec_digest\": {digest}")),
        "{stdout}"
    );
}

/// Parses one flat JSON object (the only shape the CLI emits) into
/// ordered key → raw-value pairs, respecting quoted strings.
fn parse_flat_json(text: &str) -> Vec<(String, String)> {
    let text = text.trim();
    assert!(
        text.starts_with('{') && text.ends_with('}'),
        "not a flat object: {text}"
    );
    let mut fields = Vec::new();
    let mut chars = text[1..text.len() - 1].chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        assert_eq!(chars.next(), Some('"'), "key must be quoted: {text}");
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '"' {
                break;
            }
            key.push(c);
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ':') {
            chars.next();
        }
        let mut value = String::new();
        if chars.peek() == Some(&'"') {
            value.push(chars.next().unwrap());
            let mut escaped = false;
            for c in chars.by_ref() {
                value.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    break;
                }
            }
        } else {
            while matches!(chars.peek(), Some(c) if !c.is_whitespace() && *c != ',') {
                value.push(chars.next().unwrap());
            }
        }
        fields.push((key, value));
    }
    fields
}

/// `ezrt batch --json` rows must match standalone `ezrt schedule
/// --json` runs field for field: the same key sequence (plus the
/// batch-only `file` and `cache` envelope) and identical values for
/// every deterministic field, at any fan-out width.
#[test]
fn batch_rows_match_per_file_schedule_json() {
    let small = ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::small_control());
    let overload = ezrealtime::dsl::to_xml(
        &ezrealtime::spec::SpecBuilder::new("overload")
            .task("x", |t| t.computation(3).deadline(4).period(4))
            .task("y", |t| t.computation(2).deadline(4).period(4))
            .build()
            .unwrap(),
    );
    let dir = std::env::temp_dir().join(format!("ezrt_cli_batch_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("batch dir");
    std::fs::write(dir.join("a_small.xml"), &small).expect("spec");
    std::fs::write(dir.join("b_overload.xml"), &overload).expect("spec");
    std::fs::write(dir.join("c_dup_small.xml"), &small).expect("spec");

    // Timing-dependent fields vary run to run; everything else must
    // not (per-file batch synthesis is always the sequential engine).
    let deterministic = |key: &str| key != "states_per_second" && key != "wall_time_ms";

    for jobs in ["1", "3"] {
        let output = ezrt()
            .args(["--jobs", jobs, "batch", dir.to_str().unwrap(), "--json"])
            .output()
            .expect("runs");
        assert!(output.status.success(), "jobs={jobs}");
        let stdout = String::from_utf8(output.stdout).unwrap();
        let rows: Vec<&str> = stdout.lines().collect();
        assert_eq!(rows.len(), 3, "{stdout}");

        for (row, file) in rows
            .iter()
            .zip(["a_small.xml", "b_overload.xml", "c_dup_small.xml"])
        {
            let row_fields = parse_flat_json(row);
            assert_eq!(row_fields[0].0, "file");
            assert_eq!(row_fields[0].1, format!("\"{file}\""));
            assert_eq!(row_fields.last().unwrap().0, "cache");

            let standalone = ezrt()
                .args(["schedule", dir.join(file).to_str().unwrap(), "--json"])
                .output()
                .expect("runs");
            let schedule_fields = parse_flat_json(&String::from_utf8(standalone.stdout).unwrap());

            // Field-for-field: same keys in the same order…
            let row_keys: Vec<&str> = row_fields[1..row_fields.len() - 1]
                .iter()
                .map(|(key, _)| key.as_str())
                .collect();
            let schedule_keys: Vec<&str> = schedule_fields
                .iter()
                .map(|(key, _)| key.as_str())
                .collect();
            assert_eq!(row_keys, schedule_keys, "{file} (jobs={jobs})");
            // …and identical deterministic values.
            for ((key, row_value), (_, schedule_value)) in row_fields[1..row_fields.len() - 1]
                .iter()
                .zip(&schedule_fields)
            {
                if deterministic(key) {
                    assert_eq!(
                        row_value, schedule_value,
                        "{file} field {key} (jobs={jobs})"
                    );
                }
            }
        }
        // Within one sequential batch the duplicate spec hits the cache
        // of its first occurrence.
        if jobs == "1" {
            assert!(rows[0].contains("\"cache\": \"miss\""), "{stdout}");
            assert!(rows[2].contains("\"cache\": \"hit\""), "{stdout}");
        }
    }

    // Human mode summarizes one line per file and still exits zero.
    let human = ezrt()
        .args(["batch", dir.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(human.status.success());
    let stdout = String::from_utf8(human.stdout).unwrap();
    assert!(stdout.contains("a_small.xml"), "{stdout}");
    assert!(stdout.contains("infeasible"), "{stdout}");

    // An unreadable spec yields a nonzero exit but still a row per file.
    std::fs::write(dir.join("d_bad.xml"), "<nonsense/>").expect("spec");
    let bad = ezrt()
        .args(["batch", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
    let stdout = String::from_utf8(bad.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 4, "{stdout}");
    assert!(stdout.contains("\"error\": "), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_prints_usage_successfully() {
    let output = ezrt().arg("--help").output().expect("runs");
    assert!(output.status.success());
    assert!(String::from_utf8(output.stdout).unwrap().contains("usage"));
}

#[test]
fn infeasible_specs_fail_cleanly() {
    let overload = ezrealtime::spec::SpecBuilder::new("overload")
        .task("x", |t| t.computation(3).deadline(4).period(4))
        .task("y", |t| t.computation(2).deadline(4).period(4))
        .build()
        .unwrap();
    let document = ezrealtime::dsl::to_xml(&overload);
    let file = tempfile_lite::TempFile::with_content("overload.xml", &document);
    let output = ezrt()
        .args(["schedule", file.path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(!output.status.success());
    assert!(String::from_utf8(output.stderr)
        .unwrap()
        .contains("no feasible schedule"));
    // stdout stays machine-friendly (empty).
    assert!(output.stdout.is_empty());

    // With --json the scripting contract holds on failure too: one JSON
    // object on stdout, still a nonzero exit.
    let output = ezrt()
        .args(["schedule", file.path.to_str().unwrap(), "--json"])
        .output()
        .expect("runs");
    assert!(!output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("\"feasible\": false"), "{stdout}");
    assert!(stdout.contains("\"error\": \""), "{stdout}");
    assert!(stdout.contains("\"states_visited\""), "{stdout}");
    assert!(stdout.trim_start().starts_with('{'));
    assert!(stdout.trim_end().ends_with('}'));
    assert!(!stdout.contains(",\n}"));
}
