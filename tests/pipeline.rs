//! Cross-crate pipeline tests: the Fig. 6 architecture exercised from
//! the DSL all the way to generated code and simulated execution.

use ezrealtime::codegen::Target;
use ezrealtime::core::Project;
use ezrealtime::spec::corpus::{figure3_spec, figure4_spec, figure8_spec, small_control};

#[test]
fn dsl_to_code_to_simulation() {
    // Start from XML, as the original tool's users would.
    let document = ezrealtime::dsl::to_xml(&small_control());
    let project = Project::from_dsl(&document).expect("dsl loads");
    let outcome = project.synthesize().expect("feasible");

    // Independent validation.
    assert!(outcome.validate().is_empty());

    // Code for every target, with the table embedded.
    for target in Target::ALL {
        let code = outcome.generate_code(target);
        assert!(code.source.contains("scheduleTable"));
        assert!(
            code.source.matches("(int *)").count() >= outcome.table.entries().len(),
            "{target}: one pointer per execution part"
        );
    }

    // Simulated dispatch stays timely over many periods.
    let report = outcome.execute_for(10);
    assert!(report.is_timely());
    assert_eq!(report.max_release_jitter(), 0);
}

#[test]
fn pnml_export_of_synthesized_nets_reimports() {
    for spec in [
        figure3_spec(),
        figure4_spec(),
        figure8_spec(),
        small_control(),
    ] {
        let outcome = Project::new(spec.clone()).synthesize().expect("feasible");
        let pnml = outcome.to_pnml();
        let reread = ezrealtime::pnml::from_pnml(&pnml).expect("reimports");
        assert_eq!(reread.place_count(), outcome.tasknet.net().place_count());
        assert_eq!(
            reread.transition_count(),
            outcome.tasknet.net().transition_count()
        );
    }
}

#[test]
fn figure3_and_figure4_schedules_respect_their_relations() {
    // Fig. 3: T1 precedes T2.
    let outcome = Project::new(figure3_spec()).synthesize().expect("feasible");
    let spec = outcome.spec().clone();
    let t1 = spec.task_id("T1").unwrap();
    let t2 = spec.task_id("T2").unwrap();
    let t1_done = outcome.timeline.instance_completion(t1, 0).unwrap();
    let t2_start = outcome.timeline.instance_start(t2, 0).unwrap();
    assert!(t1_done <= t2_start);

    // Fig. 4: T0 excludes T2 — execution windows may not interleave.
    let outcome = Project::new(figure4_spec()).synthesize().expect("feasible");
    let spec = outcome.spec().clone();
    let t0 = spec.task_id("T0").unwrap();
    let t2 = spec.task_id("T2").unwrap();
    let (s0, e0) = (
        outcome.timeline.instance_start(t0, 0).unwrap(),
        outcome.timeline.instance_completion(t0, 0).unwrap(),
    );
    let (s2, e2) = (
        outcome.timeline.instance_start(t2, 0).unwrap(),
        outcome.timeline.instance_completion(t2, 0).unwrap(),
    );
    assert!(
        e0 <= s2 || e2 <= s0,
        "windows [{s0},{e0}] and [{s2},{e2}] interleave"
    );
}

#[test]
fn dot_export_renders_synthesized_nets() {
    let outcome = Project::new(figure3_spec()).synthesize().expect("feasible");
    let dot = outcome.to_dot();
    assert!(dot.starts_with("digraph"));
    // Key Fig. 3 net elements appear.
    for needle in ["tr0_T1", "tprec_0_1", "pproc_cpu0"] {
        assert!(dot.contains(needle), "missing {needle}");
    }
}

#[test]
fn meta_crate_reexports_compose_a_working_pipeline() {
    // Use only the ezrealtime:: facade, as a downstream user would.
    let spec = ezrealtime::spec::SpecBuilder::new("facade")
        .task("t", |t| t.computation(1).deadline(4).period(8))
        .build()
        .expect("valid");
    let tasknet = ezrealtime::compose::translate(&spec);
    let synthesis = ezrealtime::scheduler::synthesize(
        &tasknet,
        &ezrealtime::scheduler::SchedulerConfig::default(),
    )
    .expect("feasible");
    let timeline = ezrealtime::scheduler::Timeline::from_schedule(&tasknet, &synthesis.schedule);
    assert!(ezrealtime::scheduler::validate::check(&spec, &timeline).is_empty());
    let table = ezrealtime::codegen::ScheduleTable::from_timeline(&spec, &timeline);
    assert_eq!(table.entries().len(), 1);
}
