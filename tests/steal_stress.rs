//! Stress tests for the work-stealing parallel engine: force steal-half
//! transfers under contention (many shallow subtrees, more workers than
//! root candidates) and check that every outcome still passes both
//! independent oracles and that the sharded arena's id-block directory
//! never hands one id to two states (which would corrupt the shared
//! dead-set: a dead bit for one state would prune the other).

use ezrealtime::compose::translate;
use ezrealtime::scheduler::{synthesize_parallel, Parallelism, SchedulerConfig, Timeline};
use ezrealtime::sim::replay::replay;
use ezrealtime::spec::{EzSpec, SpecBuilder};

fn config_with_jobs(jobs: usize) -> SchedulerConfig {
    SchedulerConfig {
        parallelism: Parallelism::new(jobs),
        ..SchedulerConfig::default()
    }
}

/// A feasible set shaped to force stealing: several short-period tasks
/// produce a wide forest of shallow subtrees, and with more workers than
/// initial root candidates the late workers *must* steal to participate.
fn shallow_forest_spec() -> EzSpec {
    let mut b = SpecBuilder::new("shallow-forest");
    for (i, (c, d, p)) in [(1, 4, 8), (1, 6, 8), (2, 8, 8), (1, 5, 16), (2, 12, 16)]
        .into_iter()
        .enumerate()
    {
        b = b.task(format!("t{i}"), |t| t.computation(c).deadline(d).period(p));
    }
    b.build().expect("valid spec")
}

/// An infeasible overload: the whole space must be exhausted, so every
/// worker keeps popping/stealing until global termination — the densest
/// deque traffic the engine produces, and the path that would surface a
/// termination-protocol bug as a hang.
fn overload_spec() -> EzSpec {
    SpecBuilder::new("overload")
        .task("x", |t| t.computation(3).deadline(4).period(4))
        .task("y", |t| t.computation(2).deadline(4).period(4))
        .task("z", |t| t.computation(2).deadline(8).period(8))
        .build()
        .expect("valid spec")
}

#[test]
fn contended_feasible_schedules_pass_both_oracles_at_many_jobs() {
    let spec = shallow_forest_spec();
    let tasknet = translate(&spec);
    for jobs in [2usize, 4, 8] {
        // Several rounds per worker count: steal interleavings differ
        // run to run, every one must produce an oracle-clean schedule.
        for round in 0..3 {
            let synthesis = synthesize_parallel(&tasknet, &config_with_jobs(jobs))
                .unwrap_or_else(|e| panic!("jobs={jobs} round={round}: {e}"));
            assert!(synthesis.schedule.is_feasible());
            assert_eq!(synthesis.stats.jobs, jobs);
            let timeline = Timeline::from_schedule(&tasknet, &synthesis.schedule);
            let violations = ezrealtime::scheduler::validate::check(&spec, &timeline);
            assert!(
                violations.is_empty(),
                "jobs={jobs} round={round}: {violations:?}"
            );
            let report = replay(&tasknet, &synthesis.schedule)
                .unwrap_or_else(|e| panic!("jobs={jobs} round={round}: {e}"));
            assert_eq!(report.firings, synthesis.schedule.firings().len());
        }
    }
}

#[test]
fn contended_exhaustion_proofs_agree_and_terminate() {
    let spec = overload_spec();
    let tasknet = translate(&spec);
    for jobs in [2usize, 4, 8] {
        let err = synthesize_parallel(&tasknet, &config_with_jobs(jobs)).unwrap_err();
        match err {
            ezrealtime::scheduler::SynthesizeError::Infeasible {
                missed_tasks,
                stats,
            } => {
                assert!(!missed_tasks.is_empty(), "jobs={jobs}");
                // The dead-set is indexed by arena ids; if an id block
                // were ever handed out twice, dead states would exceed
                // the states the workers actually visited.
                assert!(
                    stats.dead_states <= stats.states_visited,
                    "jobs={jobs}: {} dead states but only {} visited — \
                     id aliasing in the block directory",
                    stats.dead_states,
                    stats.states_visited
                );
            }
            other => panic!("expected infeasible at jobs={jobs}, got {other}"),
        }
    }
}

/// Steal-half actually happens under contention: with more workers than
/// root candidates, late workers can only obtain work by stealing (or by
/// parking until a donation lands in a peer's deque and stealing then).
/// Across rounds of the infeasible exhaustion — which cannot first-win
/// terminate early — at least one steal must be observed.
///
/// Whether a given round steals depends on how the OS interleaves the
/// workers: on a single-core host a round can finish with every item
/// consumed by its own deque's owner. Each round is milliseconds, so
/// the test retries (up to a generous bound) and stops at the first
/// observed steal — zero steals across *all* rounds is the regression
/// signal, a slow first round is not.
#[test]
fn steals_are_observed_under_worker_surplus() {
    let spec = overload_spec();
    let tasknet = translate(&spec);
    let mut total_steals = 0usize;
    for _ in 0..50 {
        let err = synthesize_parallel(&tasknet, &config_with_jobs(8)).unwrap_err();
        total_steals += err.stats().steals;
        if total_steals > 0 {
            return;
        }
    }
    assert!(
        total_steals > 0,
        "8 workers over a narrow root frontier never stole work in 50 rounds"
    );
}
