//! End-to-end smoke test of `ezrt serve`: spawn the real binary on an
//! ephemeral port, talk to it with a std-only client, shut it down
//! through the API and assert the process exits cleanly (no hung
//! threads) — the same sequence the CI smoke step runs under
//! `RUST_TEST_THREADS=1`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn request(addr: &str, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ezrt serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn wait_with_timeout(child: &mut Child, limit: Duration) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + limit;
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => return Some(status),
            None if Instant::now() >= deadline => return None,
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn serve_answers_and_shuts_down_cleanly() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ezrt"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("ezrt serve spawns");

    // The first stdout line announces the OS-assigned port.
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in banner")
        .to_owned();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "unexpected banner {banner:?}"
    );

    let (status, body) = request(&addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""), "{body}");

    let spec = ezrealtime::dsl::to_xml(&ezrealtime::spec::corpus::small_control());
    let (status, body) = request(&addr, "POST", "/v1/schedule", &spec);
    assert_eq!(status, 200);
    assert!(body.contains("\"feasible\": true"), "{body}");
    assert!(body.contains("\"spec_digest\": \""), "{body}");
    assert!(body.contains("\"cache\": \"miss\""), "{body}");

    let (status, body) = request(&addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("shutting down"), "{body}");

    // Clean shutdown: every server thread joins and the process exits 0
    // without being killed.
    let exit = wait_with_timeout(&mut child, Duration::from_secs(30)).unwrap_or_else(|| {
        let _ = child.kill();
        panic!("ezrt serve did not exit after /v1/shutdown (hung threads?)");
    });
    assert!(exit.success(), "serve exited with {exit:?}");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.contains("shut down cleanly"), "stdout tail: {rest:?}");
}
