//! Loading a specification from the ezRealtime XML DSL (paper Fig. 7),
//! synthesizing it, and writing every interchange artefact back out.
//!
//! Run with:
//!
//! ```text
//! cargo run --example dsl_roundtrip
//! ```

use ezrealtime::core::Project;

/// A complete `<rt:ez-spec>` document in the Fig. 7 dialect.
const DOCUMENT: &str = r##"<?xml version="1.0" encoding="UTF-8"?>
<rt:ez-spec xmlns:rt="http://pnmp.sf.net/EZRealtime" name="conveyor">
  <Processor identifier="p0"><name>mcu0</name></Processor>
  <Task identifier="ez0" precedesTasks="#ez1">
    <processor>p0</processor>
    <name>BeltSensor</name>
    <period>40</period>
    <power>4</power>
    <schedulingMode>NP</schedulingMode>
    <computing>3</computing>
    <deadline>15</deadline>
    <code>belt_position = encoder_read();</code>
  </Task>
  <Task identifier="ez1" excludesTasks="#ez2">
    <processor>p0</processor>
    <name>MotorCtl</name>
    <period>40</period>
    <power>9</power>
    <schedulingMode>NP</schedulingMode>
    <computing>6</computing>
    <deadline>30</deadline>
    <code>motor_set(pid_step(belt_position));</code>
  </Task>
  <Task identifier="ez2">
    <processor>p0</processor>
    <name>Telemetry</name>
    <period>20</period>
    <power>2</power>
    <schedulingMode>NP</schedulingMode>
    <computing>2</computing>
    <deadline>20</deadline>
    <code>uart_send(belt_position);</code>
  </Task>
</rt:ez-spec>"##;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse the DSL and validate the metamodel constraints.
    let project = Project::from_dsl(DOCUMENT)?;
    println!("loaded from DSL:\n{}", project.spec());

    // Synthesize the pre-runtime schedule.
    let outcome = project.synthesize()?;
    println!("timeline:");
    print!("{}", outcome.gantt(0, 40));

    // Round trip: the printer output parses back to the same model.
    let emitted = project.to_dsl();
    let reloaded = Project::from_dsl(&emitted)?;
    assert_eq!(reloaded.spec(), project.spec());
    println!(
        "\nDSL round trip: identical model ({} bytes)",
        emitted.len()
    );

    // And the synthesized net travels as PNML.
    let pnml = outcome.to_pnml();
    let net = ezrealtime::pnml::from_pnml(&pnml)?;
    println!(
        "PNML round trip: {} places, {} transitions ({} bytes)",
        net.place_count(),
        net.transition_count(),
        pnml.len()
    );
    Ok(())
}
