//! A random walk through spec space: start from a generated family
//! member and apply seeded structured mutations, re-synthesizing
//! incrementally at each step — the edit-loop workload the warm-start
//! machinery is built for.
//!
//! Run with:
//!
//! ```text
//! cargo run --example mutation_walk
//! ```

use ezrealtime::core::Project;
use ezrealtime::spec::generate::{family_spec, random_mutation, Family};

fn main() {
    let family = Family::Harmonic {
        tasks: 4,
        base_period: 12,
        utilization: 0.45,
    };
    let mut spec = family_spec(&family, 7);
    let mut schedule = match Project::new(spec.clone()).synthesize() {
        Ok(outcome) => {
            println!(
                "base {:<14} feasible cold in {} states",
                spec.name(),
                outcome.stats.states_visited
            );
            Some(outcome.schedule)
        }
        Err(e) => {
            println!("base {:<14} {e}", spec.name());
            None
        }
    };

    for step in 0..8u64 {
        let mutation = random_mutation(&spec, step);
        let mutated = match mutation.apply(&spec) {
            Ok(mutated) => mutated,
            Err(e) => {
                // A rejected edit is part of the contract: the mutated
                // spec would not validate, so the walk stays put.
                println!("step {step}: {mutation:?} rejected: {e}");
                continue;
            }
        };
        let touched = mutation.touched(&spec);
        let project = Project::new(mutated.clone());
        // Warm-start from the previous schedule when there is one;
        // fall back to a cold search after an infeasible step.
        let result = match &schedule {
            Some(seed) => project.synthesize_incremental(seed),
            None => project.synthesize(),
        };
        match result {
            Ok(outcome) => {
                println!(
                    "step {step}: {mutation:?} touched {touched:?} → feasible, \
                     {} fresh states ({} firings replayed)",
                    outcome.stats.states_visited, outcome.stats.incr_replayed
                );
                schedule = Some(outcome.schedule);
                spec = mutated;
            }
            Err(e) => {
                println!("step {step}: {mutation:?} touched {touched:?} → {e}");
                schedule = None;
                spec = mutated;
            }
        }
    }
}
