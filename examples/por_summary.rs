//! Machine-readable partial-order-reduction benchmark: classic versus
//! stubborn state counts on the mine pump and three 10-task sweep
//! shapes, sequentially and at four workers. Prints one JSON object to
//! stdout; `scripts/bench-summary.sh` redirects it into `BENCH_10.json`
//! so the perf trajectory has committed data points.

use ezrealtime::compose::translate;
use ezrealtime::scheduler::{
    synthesize, synthesize_parallel, Parallelism, PorLevel, SchedulerConfig, SynthesizeError,
};
use ezrealtime::spec::corpus::mine_pump;
use ezrealtime::spec::generate::{synthetic_spec, WorkloadConfig};
use ezrealtime::spec::EzSpec;
use std::time::Instant;

fn run(workload: &str, spec: &EzSpec, por: PorLevel, jobs: usize) -> String {
    let tasknet = translate(spec);
    let config = SchedulerConfig {
        por,
        parallelism: Parallelism::new(jobs),
        max_states: 3_000_000,
        max_time: std::time::Duration::from_secs(120),
        ..SchedulerConfig::default()
    };
    let started = Instant::now();
    let result = if jobs > 1 {
        synthesize_parallel(&tasknet, &config)
    } else {
        synthesize(&tasknet, &config)
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (verdict, stats) = match &result {
        Ok(s) => ("feasible", &s.stats),
        Err(e @ SynthesizeError::Infeasible { .. }) => ("infeasible", e.stats()),
        Err(e) => ("budget", e.stats()),
    };
    format!(
        "    {{\"workload\": \"{workload}\", \"jobs\": {jobs}, \"por\": \"{}\", \
         \"verdict\": \"{verdict}\", \"states_visited\": {}, \"backtracks\": {}, \
         \"wall_ms\": {wall_ms:.1}, \"por_stubborn_skips\": {}, \"por_sleep_skips\": {}, \
         \"por_overlap_skips\": {}}}",
        por.name(),
        stats.states_visited,
        stats.backtracks,
        stats.por_stubborn_skips,
        stats.por_sleep_skips,
        stats.por_overlap_skips,
    )
}

fn main() {
    let mut workloads: Vec<(String, EzSpec)> = vec![("mine_pump".to_owned(), mine_pump())];
    for (label, util, excl) in [
        ("sweep10_u0.80", 0.8, 0.4),
        ("sweep10_u0.90", 0.9, 0.5),
        ("sweep10_u0.95", 0.95, 0.6),
    ] {
        let spec = synthetic_spec(
            &WorkloadConfig {
                tasks: 10,
                total_utilization: util,
                periods: vec![20, 40, 80],
                precedence_probability: 0.3,
                exclusion_probability: excl,
                constrained_deadlines: true,
                ..WorkloadConfig::default()
            },
            42,
        );
        workloads.push((label.to_owned(), spec));
    }

    let mut rows = Vec::new();
    for (label, spec) in &workloads {
        for jobs in [1usize, 4] {
            for por in [PorLevel::Classic, PorLevel::Stubborn] {
                eprintln!("por_summary: {label} jobs={jobs} por={por}...");
                rows.push(run(label, spec, por, jobs));
            }
        }
    }

    println!("{{");
    println!("  \"issue\": 10,");
    println!("  \"bench\": \"stubborn-set + sleep-set partial-order reduction\",");
    println!(
        "  \"cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!("  \"runs\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"notes\": [");
    println!(
        "    \"mine pump, jobs=1: classic and stubborn are expected to visit the SAME state \
         count — every residual branch point on the pump is genuinely dependent grant \
         arbitration (shared-resource conflicts), which no sound reduction may prune; the \
         sweeps are where independent interleavings exist to cut.\","
    );
    println!(
        "    \"jobs=4: workers never let a sleep filter or a covered-frontier skip empty a \
         frame whose parent has no other candidates (it would unwind the whole racing stack), \
         so the pump at four workers lands at parity with classic while the sweep shapes keep \
         their reduction.\","
    );
    println!(
        "    \"sweep rows are the infeasibility proofs of an overloaded 10-task set: the \
         whole reduced space is closed, so states_visited deltas are deterministic at jobs=1 \
         and wall-time deltas follow them.\""
    );
    println!("  ]");
    println!("}}");
}
