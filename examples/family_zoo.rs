//! The generated spec families: one seeded instance of each, with its
//! shape, hyper-period and synthesis verdict — the workload zoo behind
//! the differential fuzz suite and the frontier sweeps.
//!
//! Run with:
//!
//! ```text
//! cargo run --example family_zoo
//! ```

use ezrealtime::compose::translate;
use ezrealtime::scheduler::{synthesize, SchedulerConfig};
use ezrealtime::spec::generate::{family_spec, Family};

fn main() {
    let families = [
        Family::Harmonic {
            tasks: 4,
            base_period: 10,
            utilization: 0.5,
        },
        Family::NearHarmonic {
            tasks: 4,
            base_period: 10,
            utilization: 0.5,
        },
        Family::PrecedenceChain {
            length: 4,
            period: 24,
            utilization: 0.5,
        },
        Family::PrecedenceDiamond {
            width: 3,
            period: 40,
            utilization: 0.5,
        },
        Family::ExclusionClique {
            tasks: 3,
            period: 30,
            utilization: 0.6,
        },
        Family::Multiprocessor {
            tasks: 5,
            processors: 2,
            period: 20,
            utilization: 1.2,
        },
    ];

    let config = SchedulerConfig {
        max_states: 200_000,
        ..SchedulerConfig::default()
    };
    println!(
        "{:<16} {:>5} {:>6} {:>6} {:>12} verdict",
        "family", "tasks", "edges", "excl", "hyperperiod"
    );
    for family in families {
        // Same (family, seed) pair → same spec, every run, everywhere.
        let spec = family_spec(&family, 42);
        let verdict = match synthesize(&translate(&spec), &config) {
            Ok(synthesis) => format!(
                "feasible ({} firings, {} states)",
                synthesis.schedule.firings().len(),
                synthesis.stats.states_visited
            ),
            Err(e) => format!("{e}"),
        };
        println!(
            "{:<16} {:>5} {:>6} {:>6} {:>12} {verdict}",
            family.name(),
            spec.task_count(),
            spec.precedences().len(),
            spec.exclusions().len(),
            spec.hyperperiod(),
        );
    }
}
