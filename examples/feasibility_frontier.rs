//! Feasibility frontier: cross a base spec with a parameter grid and
//! watch the verdict flip as deadlines tighten and release jitter grows
//! — the in-process version of `ezrt sweep` / `POST /v1/sweep`.
//!
//! Run with:
//!
//! ```text
//! cargo run --example feasibility_frontier
//! ```

use ezrealtime::server::cache::ResultCache;
use ezrealtime::server::sweep::{run_sweep, SweepOptions};
use ezrealtime::spec::corpus::small_control;
use ezrealtime::spec::sweep::SweepGrid;
use ezrealtime::tpn::Parallelism;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = small_control();
    let grid = SweepGrid::parse("periods:60,80,100;deadlines:40,70,100;jitter:0,3")?;

    // Every grid point funnels through the same digest cache the server
    // uses: duplicate points become lookups, and every point
    // warm-starts from the base spec's schedule prefix.
    let cache = ResultCache::new(64, 4);
    let options = SweepOptions {
        fanout: Parallelism::new(4),
        scheduler: Default::default(),
    };
    let report = run_sweep(&spec, &grid, &options, &cache)?;

    // The rows are the frontier: deterministic JSON lines, identical
    // across runs and fan-out widths.
    print!("{}", report.render());
    let stats = cache.stats();
    println!(
        "\n{} points over {:?}: {} unique specs, {} feasible, {} invalid",
        report.rows.len(),
        spec.name(),
        report.unique_digests,
        report.feasible,
        report.invalid,
    );
    println!(
        "cache: {} misses (searches actually run), {} hits (deduplicated points)",
        stats.misses, stats.hits
    );
    Ok(())
}
