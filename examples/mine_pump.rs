//! The paper's §5 case study end to end: the mine pump control system.
//!
//! A simplified pump control system for a mining environment: the pump
//! drains a sump between water-level bounds, but must stay off while
//! the methane level is critical; carbon monoxide and air flow are
//! monitored continuously. Ten periodic tasks (Table 1), hyper-period
//! 30 000, 782 task instances.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mine_pump
//! ```

use ezrealtime::codegen::Target;
use ezrealtime::core::Project;
use ezrealtime::spec::corpus::mine_pump;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = mine_pump();
    println!("Table 1 specification:\n{spec}");
    println!(
        "hyperperiod {} time units, {} task instances\n",
        spec.hyperperiod(),
        spec.total_instances()
    );

    let outcome = Project::new(spec).synthesize()?;
    println!("schedule synthesis (paper: 3268 states, minimum 3130, 330 ms):");
    println!(
        "  states visited  {:>6}\n  minimum states  {:>6}\n  overhead ratio  {:>9.4}\n  elapsed         {:>6.1?}",
        outcome.stats.states_visited,
        outcome.stats.minimum_states(),
        outcome.stats.overhead_ratio(),
        outcome.stats.elapsed,
    );

    // No violations when re-checked against the specification.
    let violations = outcome.validate();
    println!("  validator       {:>6} violations", violations.len());

    // The first 160 time units of the synthesized schedule.
    println!("\ntimeline [0, 160):");
    print!("{}", outcome.gantt(0, 160));

    // Execute two hyper-periods on the simulated dispatcher.
    let report = outcome.execute_for(2);
    println!(
        "\ndispatcher execution over 2 periods: misses={} jitter={} busy={} idle={}",
        report.deadline_misses.len(),
        report.max_release_jitter(),
        report.busy_time,
        report.idle_time,
    );

    // Artefacts: schedule table, C code, PNML.
    println!(
        "\nschedule table rows: {} (one per instance; all non-preemptive)",
        outcome.table.entries().len()
    );
    let code = outcome.generate_code(Target::I8051);
    println!(
        "generated {} for the 8051 target ({} bytes)",
        code.source_name,
        code.source.len()
    );
    let pnml = outcome.to_pnml();
    println!("PNML export: {} bytes (ISO/IEC 15909-2)", pnml.len());
    Ok(())
}
