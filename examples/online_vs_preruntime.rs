//! Why pre-runtime scheduling? The mine pump under online schedulers.
//!
//! The paper's approach synthesizes the whole schedule before the system
//! runs. This example contrasts it with classic runtime scheduling on
//! the same Table 1 workload: greedy non-preemptive EDF *misses
//! deadlines* that the pre-runtime search avoids by reordering, and
//! rate-monotonic misses the tight-deadline COH handler outright.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_vs_preruntime
//! ```

use ezrealtime::core::Project;
use ezrealtime::sim::{simulate_online, OnlinePolicy};
use ezrealtime::spec::corpus::mine_pump;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = mine_pump();

    println!(
        "{:<24} {:>8} {:>12} {:>14} {:>10}",
        "scheduler", "misses", "preemptions", "ctx switches", "timely"
    );

    // Pre-runtime: synthesize once, dispatch a fixed table.
    let outcome = Project::new(spec.clone()).synthesize()?;
    let report = outcome.execute_for(2);
    println!(
        "{:<24} {:>8} {:>12} {:>14} {:>10}",
        "pre-runtime synthesis",
        report.deadline_misses.len(),
        report.preemptions,
        report.context_switches,
        report.is_timely(),
    );

    // Online baselines on the identical workload.
    for policy in OnlinePolicy::ALL {
        let online = simulate_online(&spec, policy, 2);
        println!(
            "{:<24} {:>8} {:>12} {:>14} {:>10}",
            policy.name(),
            online.execution.deadline_misses.len(),
            online.execution.preemptions,
            online.execution.context_switches,
            online.schedulable(),
        );
    }

    // Show who exactly gets hurt under rate-monotonic dispatching.
    let rm = simulate_online(&spec, OnlinePolicy::RmPreemptive, 1);
    let mut victims: Vec<&str> = rm
        .execution
        .deadline_misses
        .iter()
        .map(|m| spec.task(m.task).name())
        .collect();
    victims.sort_unstable();
    victims.dedup();
    println!("\nrate-monotonic victims: {}", victims.join(", "));
    println!(
        "(COH has c=15, d=100 but period 2500 — nearly the lowest RM priority;\n \
         deadline-monotonic and EDF fix it, and the pre-runtime table avoids\n \
         the question entirely by fixing every start time offline)"
    );
    Ok(())
}
