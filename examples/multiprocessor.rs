//! Multi-processor synthesis with inter-task messages over a bus.
//!
//! The Fig. 5 metamodel carries `1..*` processors and `Message` objects
//! with bus, arbitration (`grantBus`) and transfer (`communication`)
//! times; the DATE paper validates mono-processor and names distributed
//! targets as future work. This example runs that extension: a sensing
//! MCU and a control MCU exchanging a frame over CAN, scheduled jointly
//! by the same pre-runtime search.
//!
//! Run with:
//!
//! ```text
//! cargo run --example multiprocessor
//! ```

use ezrealtime::codegen::ScheduleTable;
use ezrealtime::core::Project;
use ezrealtime::spec::SpecBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SpecBuilder::new("dual-node")
        .processor("sensor_mcu")
        .processor("control_mcu")
        .task("sample", |t| {
            t.computation(3)
                .deadline(10)
                .period(40)
                .on_processor("sensor_mcu")
                .code("frame.level = adc_read();")
        })
        .task("transmit", |t| {
            t.computation(2)
                .deadline(20)
                .period(40)
                .on_processor("sensor_mcu")
                .code("can_send(&frame);")
        })
        .task("actuate", |t| {
            t.computation(4)
                .deadline(40)
                .period(40)
                .on_processor("control_mcu")
                .code("valve_set(decide(frame.level));")
        })
        .task("local_watch", |t| {
            t.computation(2)
                .deadline(10)
                .period(20)
                .on_processor("control_mcu")
                .code("wdt_kick();")
        })
        .precedes("sample", "transmit")
        .message("frame", "transmit", "actuate", "can0", 1, 2)
        .build()?;

    println!("specification:\n{spec}");

    let outcome = Project::new(spec).synthesize()?;
    println!("joint schedule over both processors:");
    print!("{}", outcome.gantt(0, 40));

    // The frame takes 1 (arbitration) + 2 (transfer) units on can0
    // after `transmit` finishes; `actuate` waits for delivery.
    let spec = outcome.spec().clone();
    let transmit = spec.task_id("transmit").unwrap();
    let actuate = spec.task_id("actuate").unwrap();
    println!(
        "\nframe: sent at {}, actuate starts at {} (delivery = sent + 1 + 2)",
        outcome.timeline.instance_completion(transmit, 0).unwrap(),
        outcome.timeline.instance_start(actuate, 0).unwrap(),
    );

    // One schedule table — and one generated dispatcher — per MCU.
    for name in ["sensor_mcu", "control_mcu"] {
        let processor = spec.processor_id(name).unwrap();
        let table = ScheduleTable::from_timeline_for(&spec, &outcome.timeline, processor);
        println!("\n{name}: {} execution part(s)", table.entries().len());
        print!("{}", table.to_c_array());
    }

    let report = outcome.execute_for(2);
    println!(
        "\nsimulated 2 periods across both MCUs: misses={} busy={} of horizon {}",
        report.deadline_misses.len(),
        report.busy_time,
        report.horizon
    );
    Ok(())
}
