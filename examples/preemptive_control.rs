//! A preemptive workload in the style of the paper's Fig. 8: short
//! urgent tasks repeatedly preempt longer background work, so the
//! synthesized schedule table contains resumed execution parts and the
//! generated dispatcher exercises its context save/restore paths.
//!
//! Run with:
//!
//! ```text
//! cargo run --example preemptive_control
//! ```

use ezrealtime::codegen::Target;
use ezrealtime::core::Project;
use ezrealtime::spec::corpus::figure8_spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = figure8_spec();
    println!("specification:\n{spec}");

    let outcome = Project::new(spec).synthesize()?;

    println!("timeline ('#' = execution part, '+' = resumed part):");
    print!("{}", outcome.gantt(0, 24));

    println!(
        "\n{} execution parts for {} instances — {} preemptions\n",
        outcome.table.entries().len(),
        outcome.spec().total_instances(),
        outcome.timeline.preemption_count()
    );

    // The Fig. 8 artefact itself.
    println!("{}", outcome.table.to_c_array());

    // Bare-metal code for an AVR: the resumed rows drive
    // EZRT_CONTEXT_RESTORE instead of a fresh call.
    let code = outcome.generate_code(Target::Avr8);
    let restore_sites = code.source.matches("EZRT_CONTEXT_RESTORE").count();
    println!(
        "generated {} with {} context-restore dispatch path(s)",
        code.source_name, restore_sites
    );

    let report = outcome.execute_for(3);
    println!(
        "simulated 3 periods: misses={} context switches={} preemptions={}",
        report.deadline_misses.len(),
        report.context_switches,
        report.preemptions,
    );
    Ok(())
}
