//! Quickstart: specify a small hard real-time system, synthesize its
//! pre-runtime schedule, and look at every artefact the pipeline
//! produces.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ezrealtime::codegen::Target;
use ezrealtime::core::Project;
use ezrealtime::spec::SpecBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Specify: three periodic tasks with a data dependency and a
    //    shared resource, exactly the §3.2 specification model.
    let spec = SpecBuilder::new("quickstart")
        .task("sample", |t| {
            t.computation(2)
                .deadline(10)
                .period(25)
                .code("sensor_value = adc_read();")
        })
        .task("control", |t| {
            t.computation(5)
                .deadline(20)
                .period(25)
                .code("output = pid_step(sensor_value);")
        })
        .task("log", |t| {
            t.computation(3)
                .deadline(25)
                .period(25)
                .code("log_append(output);")
        })
        .precedes("sample", "control")
        .precedes("control", "log")
        .excludes("sample", "log")
        .build()?;

    println!("specification:\n{spec}");

    // 2. Synthesize: specification → time Petri net → depth-first search
    //    → feasible firing schedule (paper §3.3 + §4.4.1).
    let project = Project::new(spec);
    let outcome = project.synthesize()?;
    println!(
        "synthesis: {} firings, {} states searched (minimum {}), {:?}",
        outcome.schedule.firings().len(),
        outcome.stats.states_visited,
        outcome.stats.minimum_states(),
        outcome.stats.elapsed,
    );

    // 3. Inspect the execution timeline.
    println!("\ntimeline (one schedule period):");
    print!("{}", outcome.gantt(0, 25));

    // 4. The Fig. 8 schedule table…
    println!("\nschedule table:\n{}", outcome.table.to_c_array());

    // 5. …and the scheduled C code for a host-runnable target.
    let code = outcome.generate_code(Target::PosixSim);
    println!(
        "generated {} ({} bytes) and {} ({} bytes)",
        code.header_name,
        code.header.len(),
        code.source_name,
        code.source.len()
    );

    // 6. Execute on the simulated dispatcher: timely and predictable.
    let report = outcome.execute_for(4);
    println!(
        "\nsimulated 4 schedule periods: misses={}, release jitter={}, utilization={:.2}",
        report.deadline_misses.len(),
        report.max_release_jitter(),
        report.utilization()
    );
    assert!(report.is_timely());
    Ok(())
}
