//! Offline stand-in for the subset of the `criterion` benchmarking API
//! this workspace uses.
//!
//! The workspace must build without network access, so the bench harness
//! vendors this minimal implementation instead of the real crates.io
//! dependency. It keeps the call sites source-compatible (`Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros) and produces simple wall-clock measurements:
//! each benchmark is warmed up, then timed over enough iterations to cross
//! a fixed measurement window, and the mean time per iteration is printed.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement settings shared by every benchmark in the process.
#[derive(Debug, Clone, Copy)]
struct Settings {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warmup: Duration::from_millis(100),
            measurement: Duration::from_millis(400),
        }
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.settings, &id.into().label, &mut f);
        self
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes samples by time.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in reports time only.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&self.criterion.settings, &label, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&self.criterion.settings, &label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the measurement
    /// window allows.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(settings: &Settings, label: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm up and estimate the per-iteration cost with batches of growing
    // size, then measure one batch sized to fill the measurement window.
    let mut batch = 1u64;
    let warmup_start = Instant::now();
    let per_iteration = loop {
        let mut bencher = Bencher {
            iterations: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if warmup_start.elapsed() >= settings.warmup {
            break bencher.elapsed / (batch.max(1) as u32);
        }
        batch = batch.saturating_mul(2).min(1 << 20);
    };

    let target = settings.measurement.as_nanos();
    let cost = per_iteration.as_nanos().max(1);
    let iterations = ((target / cost) as u64).clamp(1, 10_000_000);
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed / (iterations.max(1) as u32);
    println!("{label:<40} time: [{mean:?} per iter, {iterations} iters]");
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut criterion = Criterion {
            settings: Settings {
                warmup: Duration::from_millis(1),
                measurement: Duration::from_millis(2),
            },
        };
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(1));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &p| {
            b.iter(|| ran += p as u64)
        });
        group.finish();
        assert!(ran > 0);
    }
}
