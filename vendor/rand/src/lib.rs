//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range}` and
//! `SliceRandom::choose`.
//!
//! The workspace must build without network access, so instead of the real
//! crates.io dependency it vendors this minimal implementation. The
//! generator is a SplitMix64 — statistically fine for workload generation,
//! deterministic per seed, but **not** the real `StdRng` stream: seeds do
//! not reproduce sequences from upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable without parameters (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from, mirroring `rand::distributions`'
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection step — bias is negligible for workload synthesis).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let index = super::uniform_u64(rng, self.len() as u64) as usize;
                Some(&self[index])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hold_their_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(5usize..6);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = pool.choose(&mut rng).unwrap();
            seen[(v / 10 - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
