//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of a type, mirroring
/// `proptest::strategy::Strategy` (generation only; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, flat }
    }

    /// Discards generated values failing `filter`, retrying a bounded
    /// number of times.
    fn prop_filter<F>(self, whence: &'static str, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            filter,
        }
    }

    /// Erases the strategy type behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }

    /// Builds recursive values by applying `recurse` up to `depth` times
    /// over this leaf strategy (the size hints are accepted for API
    /// compatibility and ignored).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    flat: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.flat)(self.base.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.base.new_value(rng);
            if (self.filter)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot generate from empty range"
                );
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot generate from empty range"
                );
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot generate from empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+)            ;

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// A strategy that always yields clones of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let v = (3u32..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).new_value(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_flat_map_filter_compose() {
        let mut rng = rng();
        let strategy = (1u32..5)
            .prop_flat_map(|n| (0u32..n, Just(n)))
            .prop_map(|(below, n)| (below, n))
            .prop_filter("below bound", |&(below, n)| below < n);
        for _ in 0..200 {
            let (below, n) = strategy.new_value(&mut rng);
            assert!(below < n);
        }
    }

    #[test]
    fn boxed_strategies_clone_and_recurse() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Vec<Tree>),
        }
        fn depth(tree: &Tree) -> usize {
            match tree {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strategy = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = rng();
        for _ in 0..100 {
            let tree = strategy.new_value(&mut rng);
            assert!(depth(&tree) <= 4 + 1);
        }
    }
}
