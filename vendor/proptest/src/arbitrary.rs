//! `any::<T>()` — canonical strategies per type.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical full-range strategy for primitive types.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_primitive {
    ($($t:ty => $sample:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let sample: fn(&mut TestRng) -> $t = $sample;
                sample(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_primitive! {
    u64 => |rng| rng.next_u64(),
    u32 => |rng| (rng.next_u64() >> 32) as u32,
    usize => |rng| rng.next_u64() as usize,
    bool => |rng| rng.next_u64() & 1 == 1,
    f64 => |rng| rng.unit_f64(),
    Index => |rng| Index::new(rng.next_u64()),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(3);
        let strategy = any::<u64>();
        let a = strategy.new_value(&mut rng);
        let b = strategy.new_value(&mut rng);
        assert_ne!(a, b);
        let _: bool = any::<bool>().new_value(&mut rng);
        let index = any::<Index>().new_value(&mut rng);
        assert!(index.index(10) < 10);
    }
}
