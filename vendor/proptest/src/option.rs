//! Option strategies, mirroring `proptest::option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy generating `Some` values from `inner` three times out of
/// four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_both_variants() {
        let strategy = of(0u32..10);
        let mut rng = TestRng::new(4);
        let values: Vec<_> = (0..100).map(|_| strategy.new_value(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
    }
}
