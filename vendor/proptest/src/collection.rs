//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A size specification for generated collections: an exact count or a
/// half-open range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// A strategy generating `Vec`s of `element` values with a size drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.between(self.size.min as u64, (self.size.max_exclusive - 1) as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sizes_are_exact() {
        let strategy = vec(0u32..5, 7);
        let mut rng = TestRng::new(2);
        for _ in 0..50 {
            assert_eq!(strategy.new_value(&mut rng).len(), 7);
        }
    }

    #[test]
    fn ranged_sizes_stay_in_range() {
        let strategy = vec(0u32..5, 1..4);
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = strategy.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
