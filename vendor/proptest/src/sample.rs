//! Index sampling, mirroring `proptest::sample`.

/// A length-independent random index: generated once, projected onto any
/// collection length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Self {
        Index(raw)
    }

    /// Projects this index onto a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_projects_within_bounds() {
        let index = Index::new(u64::MAX - 3);
        for len in 1..50 {
            assert!(index.index(len) < len);
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_collection_panics() {
        Index::new(1).index(0);
    }
}
