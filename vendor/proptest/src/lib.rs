//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! The workspace must build without network access, so instead of the real
//! crates.io dependency it vendors this minimal property-testing engine:
//! deterministic seeded generation, the [`Strategy`](prelude::Strategy) combinators the test
//! suite calls (`prop_map`, `prop_flat_map`, `prop_filter`,
//! `prop_recursive`, ranges, tuples, collections, a small regex subset for
//! string strategies) and the `proptest!` / `prop_assert!` macro family.
//! There is **no shrinking**: a failing case reports its seed and panics.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports an optional leading `#![proptest_config(...)]` attribute and
/// any number of `fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __ezrt_config = $config;
            $crate::test_runner::run(&__ezrt_config, stringify!($name), |__ezrt_rng| {
                $(
                    let $pat = $crate::strategy::Strategy::new_value(&($strat), __ezrt_rng);
                )+
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property test, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__ezrt_left, __ezrt_right) = (&$left, &$right);
        if !(*__ezrt_left == *__ezrt_right) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __ezrt_left,
                __ezrt_right
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__ezrt_left, __ezrt_right) = (&$left, &$right);
        if !(*__ezrt_left == *__ezrt_right) {
            panic!($($fmt)+);
        }
    }};
}

/// Asserts inequality inside a property test, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__ezrt_left, __ezrt_right) = (&$left, &$right);
        if *__ezrt_left == *__ezrt_right {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __ezrt_left
            );
        }
    }};
}

/// Rejects the current case when an assumption fails, mirroring
/// `prop_assume!`. The runner retries with a fresh input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
