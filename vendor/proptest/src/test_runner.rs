//! The case runner: deterministic seeded generation, reject handling and
//! failure reporting (no shrinking).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Why a single test case did not complete normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assumption failed (`prop_assume!`); try another input.
    Reject,
}

/// The outcome of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot draw below zero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform draw in `[min, max]` (inclusive).
    pub fn between(&mut self, min: u64, max: u64) -> u64 {
        debug_assert!(min <= max);
        if min == 0 && max == u64::MAX {
            return self.next_u64();
        }
        min + self.below(max - min + 1)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `body` for `config.cases` accepted inputs, with deterministic
/// per-test seeds. Rejected cases (`prop_assume!`) are retried with fresh
/// seeds up to a bounded budget; a panicking case reports its seed before
/// propagating.
pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name.as_bytes());
    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = u64::from(config.cases) * 16 + 256;
    while accepted < config.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "property {name:?} rejected too many inputs \
                 ({accepted}/{} accepted after {attempt} attempts)",
                config.cases
            );
        }
        let seed = base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::new(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject)) => continue,
            Err(panic) => {
                eprintln!("property {name:?} failed on case {accepted} (seed {seed:#018x})");
                resume_unwind(panic);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_configured_number_of_cases() {
        let mut count = 0u32;
        run(&ProptestConfig::with_cases(10), "counter", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn rejects_are_retried() {
        let mut total = 0u32;
        let mut accepted = 0u32;
        run(&ProptestConfig::with_cases(5), "rejecting", |rng| {
            total += 1;
            if rng.next_u64() % 2 == 0 {
                return Err(TestCaseError::Reject);
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, 5);
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "rejected too many")]
    fn hopeless_assumptions_abort() {
        run(&ProptestConfig::with_cases(4), "hopeless", |_| {
            Err(TestCaseError::Reject)
        });
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_draws_respect_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.between(3, 9);
            assert!((3..=9).contains(&v));
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
