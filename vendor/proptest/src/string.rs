//! String strategies from a small regex subset, mirroring proptest's
//! `impl Strategy for &str`.
//!
//! Supported syntax — enough for the patterns this workspace's tests use:
//!
//! * literal characters and `\`-escaped literals;
//! * character classes `[...]` with ranges (`A-Z`) and literal members
//!   (a trailing `-` is literal);
//! * `\PC`, proptest's "printable character" class (generated here as
//!   printable ASCII plus a sprinkling of Latin-1 and Greek);
//! * quantifiers `{n}`, `{m,n}`, `*`, `+`, `?` applied to the preceding
//!   atom.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One generatable unit: a set of character ranges plus a repetition count.
#[derive(Debug, Clone)]
struct Piece {
    ranges: Vec<(char, char)>,
    min: u32,
    max: u32,
}

impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let pieces = parse(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.between(u64::from(piece.min), u64::from(piece.max));
            for _ in 0..count {
                out.push(sample_char(&piece.ranges, rng));
            }
        }
        out
    }
}

fn sample_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| u64::from(hi) - u64::from(lo) + 1)
        .sum();
    let mut pick = rng.below(total);
    for &(lo, hi) in ranges {
        let span = u64::from(hi) - u64::from(lo) + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick as u32).expect("ranges hold valid chars");
        }
        pick -= span;
    }
    unreachable!("pick is below the total span")
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let ranges = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => match chars.next() {
                Some('P') => {
                    // Proptest's printable-character escape `\PC`.
                    let class = chars.next();
                    assert_eq!(class, Some('C'), "unsupported \\P class in {pattern:?}");
                    printable_ranges()
                }
                Some(escaped) => vec![(escaped, escaped)],
                None => panic!("dangling escape in pattern {pattern:?}"),
            },
            literal => vec![(literal, literal)],
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        pieces.push(Piece { ranges, min, max });
    }
    pieces
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                ranges.push((escaped, escaped));
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.peek() {
                        // A `-` before the closing bracket is a literal.
                        Some(']') | None => {
                            ranges.push((lo, lo));
                            ranges.push(('-', '-'));
                        }
                        Some(&hi) => {
                            chars.next();
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            ranges.push((lo, hi));
                        }
                    }
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    ranges
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            let parse_int = |text: &str| -> u32 {
                text.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                Some((min, max)) => (parse_int(min), parse_int(max)),
                None => {
                    let exact = parse_int(&body);
                    (exact, exact)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn printable_ranges() -> Vec<(char, char)> {
    vec![
        (' ', '~'),
        ('\u{00A1}', '\u{00FF}'),
        ('\u{0391}', '\u{03A9}'),
        ('\u{2190}', '\u{2199}'),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(17)
    }

    #[test]
    fn xml_name_pattern_generates_names() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9_.-]{0,8}".new_value(&mut rng);
            assert!((1..=9).contains(&s.chars().count()), "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic(), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_escape_generates_bounded_strings() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "\\PC{0,200}".new_value(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn ascii_printable_class_covers_specials() {
        let mut rng = rng();
        let mut saw_special = false;
        for _ in 0..400 {
            let s = "[ -~]{1,20}".new_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            saw_special |= s.contains(['<', '&', '>']);
        }
        assert!(saw_special, "XML specials should appear eventually");
    }

    #[test]
    fn quantifier_forms_parse() {
        let mut rng = rng();
        assert_eq!("a{3}".new_value(&mut rng), "aaa");
        let star = "b*".new_value(&mut rng);
        assert!(star.len() <= 8);
        let plus = "c+".new_value(&mut rng);
        assert!(!plus.is_empty() && plus.len() <= 8);
        let opt = "d?".new_value(&mut rng);
        assert!(opt.len() <= 1);
        let escaped = "\\[x\\]".new_value(&mut rng);
        assert_eq!(escaped, "[x]");
    }
}
