#!/usr/bin/env sh
# Regenerates BENCH_10.json — the committed machine-readable summary of
# the partial-order-reduction benchmark (ISSUE 10): classic vs stubborn
# state counts on the mine pump and three 10-task sweep shapes, at one
# and four workers. Run from the repository root:
#
#   scripts/bench-summary.sh [output.json]
#
# The numbers at jobs=1 are deterministic (state counts close a fixed
# reduced space); jobs=4 rows race workers and vary a few percent run to
# run — treat their states_visited as indicative, the verdicts as exact.
set -eu

out="${1:-BENCH_10.json}"

cargo build --release --example por_summary
target/release/examples/por_summary > "$out"
echo "bench-summary: wrote $out"
