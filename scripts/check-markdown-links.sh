#!/usr/bin/env bash
# Offline markdown link check: every repo-relative link target in the
# top-level docs must exist. External (http/https/mailto) links are
# skipped — the build must work without network — as are pure #anchors.
#
# Usage: scripts/check-markdown-links.sh [file.md ...]
# With no arguments, checks the standard top-level documents.
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md ARCHITECTURE.md ROADMAP.md CHANGES.md)
    for optional in PAPER.md PAPERS.md SNIPPETS.md EXPERIMENTS.md ISSUE.md; do
        [ -f "$optional" ] && files+=("$optional")
    done
fi

fail=0
for file in "${files[@]}"; do
    if [ ! -f "$file" ]; then
        echo "MISSING FILE: $file" >&2
        fail=1
        continue
    fi
    # Extract inline links `](target)`; strip the wrapper.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$path" ]; then
            echo "$file: broken link -> $target" >&2
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "markdown link check FAILED" >&2
    exit 1
fi
echo "markdown link check OK (${#files[@]} files)"
