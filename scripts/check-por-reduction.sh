#!/usr/bin/env bash
# CI smoke for the partial-order reduction: runs `ezrt schedule --json`
# at por=classic and por=stubborn on the mine pump and one generated
# sweep-family spec, and asserts (a) the verdicts agree and (b) stubborn
# never visits more states than classic. Uses the real binary so the
# whole CLI → core → scheduler plumbing of the `--por` knob is on the
# hook, not just the library API.
#
#   scripts/check-por-reduction.sh [path/to/ezrt]
set -eu

bin="${1:-target/release/ezrt}"
if [ ! -x "$bin" ]; then
    echo "check-por-reduction: $bin not found — run 'cargo build --release' first" >&2
    exit 1
fi

json_field() {
    # Pretty rendering is one "key": value field per line.
    sed -n "s/^ *\"$2\": \([^,]*\),\{0,1\}\$/\1/p" <<<"$1" | head -n 1
}

fail=0
check() {
    spec="$1"
    # Infeasible verdicts exit nonzero but still print the JSON object.
    classic=$("$bin" --por classic schedule "$spec" --json 2>/dev/null || true)
    stubborn=$("$bin" --por stubborn schedule "$spec" --json 2>/dev/null || true)
    classic_verdict=$(json_field "$classic" feasible)
    stubborn_verdict=$(json_field "$stubborn" feasible)
    classic_states=$(json_field "$classic" states_visited)
    stubborn_states=$(json_field "$stubborn" states_visited)
    if [ -z "$classic_verdict" ] || [ -z "$stubborn_verdict" ]; then
        echo "FAIL $spec: missing feasible field (classic='$classic_verdict' stubborn='$stubborn_verdict')" >&2
        fail=1
        return
    fi
    if [ "$classic_verdict" != "$stubborn_verdict" ]; then
        echo "FAIL $spec: verdicts diverge (classic=$classic_verdict stubborn=$stubborn_verdict)" >&2
        fail=1
        return
    fi
    if [ "$stubborn_states" -gt "$classic_states" ]; then
        echo "FAIL $spec: stubborn visited $stubborn_states > classic $classic_states" >&2
        fail=1
        return
    fi
    echo "ok   $spec: verdict=$classic_verdict states classic=$classic_states stubborn=$stubborn_states"
}

check tests/corpus/feasible__mine-pump.xml
check tests/corpus/feasible__near-harmonic.xml
check tests/corpus/infeasible__clique-overload.xml

exit "$fail"
