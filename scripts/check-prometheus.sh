#!/usr/bin/env bash
# Validates a Prometheus text exposition (format 0.0.4) as served by
# `GET /v1/metrics`: every sample belongs to a family announced by a
# `# TYPE` line, `# HELP` precedes its `# TYPE`, family names arrive in
# sorted order, sample values parse as numbers, and every histogram's
# `+Inf` bucket equals its `_count`. Offline, awk-only — the CI smoke
# step pipes a live scrape through it.
#
# Usage: scripts/check-prometheus.sh [exposition.txt]
# With no argument, reads stdin.
set -euo pipefail

awk '
function fail(msg) { printf "line %d: %s: %s\n", NR, msg, $0 > "/dev/stderr"; bad = 1 }
/^# HELP / {
    name = $3
    if (name <= last_family) fail("families out of sorted order")
    helped = name
    next
}
/^# TYPE / {
    name = $3; kind = $4
    if (helped != name) fail("TYPE without preceding HELP")
    if (kind != "counter" && kind != "gauge" && kind != "histogram") fail("unknown type")
    type[name] = kind
    last_family = name
    families++
    next
}
/^#/ { next }
/^$/ { next }
{
    # Sample line: name{labels} value — value is the last field.
    value = $NF
    if (value !~ /^[+-]?[0-9]+([.][0-9]+)?([eE][+-]?[0-9]+)?$/ && value != "+Inf" && value != "NaN")
        fail("unparseable sample value")
    key = $1
    sub(/\{.*/, "", key)
    base = key
    sub(/_bucket$/, "", base); sub(/_sum$/, "", base); sub(/_count$/, "", base)
    if (key in type) base = key
    if (!(base in type)) fail("sample outside any announced family")
    samples++
    if ($1 ~ /_bucket\{le="\+Inf"\}/) { sub(/_bucket$/, "", key); inf[key] = value }
    if (key ~ /_count$/) { sub(/_count$/, "", key); count[key] = value }
}
END {
    for (name in type) {
        if (type[name] == "histogram") {
            if (!(name in inf)) { printf "histogram %s has no +Inf bucket\n", name > "/dev/stderr"; bad = 1 }
            else if (inf[name] != count[name]) {
                printf "histogram %s: +Inf bucket %s != _count %s\n", name, inf[name], count[name] > "/dev/stderr"
                bad = 1
            }
        }
    }
    if (families == 0 || samples == 0) { print "empty exposition" > "/dev/stderr"; bad = 1 }
    if (bad) { print "prometheus exposition check FAILED" > "/dev/stderr"; exit 1 }
    printf "prometheus exposition OK (%d families, %d samples)\n", families, samples
}
' "${1:--}"
